#include "core/pipeline.hpp"

#include <utility>

#include "analysis/critical_path.hpp"
#include "analysis/parallelism.hpp"
#include "analysis/waiting.hpp"
#include "core/timebased.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"

namespace perturb::core {

namespace {

using trace::Trace;
using trace::TraceIndex;

// Self-observability: wall-clock spans of the pipeline composition
// (load → triage → repair → index → analyses) plus tallies of what flowed
// through each stage.  On the single-file, single-thread path the stages are
// disjoint, so the per-stage sums account for nearly all of the end-to-end
// time; batched drivers overlap stages across workers, where the sums
// measure aggregate stage cost instead.
const support::HistogramMetric kPhaseLoad("pipeline.phase.load.ns");
const support::HistogramMetric kPhaseTriage("pipeline.phase.triage.ns");
const support::HistogramMetric kPhaseRepair("pipeline.phase.repair.ns");
const support::HistogramMetric kPhaseIndex("pipeline.phase.index.ns");
const support::HistogramMetric kPhaseAnalyses("pipeline.phase.analyses.ns");
const support::Counter kRuns("pipeline.runs");
const support::Counter kEventsMeasured("pipeline.events.measured");
const support::Counter kTriageViolations("pipeline.triage.violations");
const support::Counter kRepairDropped("pipeline.repair.events_dropped");
const support::Counter kRepairSynthesized("pipeline.repair.events_synthesized");
const support::Counter kRepairAdjusted("pipeline.repair.events_adjusted");
const support::Counter kQualityScored("pipeline.quality.scored");

/// Cooperative cancellation checkpoint at a phase boundary; no-op without a
/// token.  Throws support::CancelledError once the options' token has fired.
void checkpoint(const PipelineOptions& options, const char* where) {
  if (options.cancel != nullptr) options.cancel->check(where);
}

class TimeBasedAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "time-based"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    out.approx = time_based_approximation(index.trace(), options.overheads);
    return out;
  }
};

class EventBasedAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "event-based"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    EventBasedResult result = event_based_approximation(
        index, options.overheads, options.event_based);
    out.approx = std::move(result.approx);
    result.approx = Trace{};
    out.event_stats = std::move(result);
    return out;
  }
};

class LiberalAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "liberal"; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    const DoacrossShape shape =
        extract_doacross_shape(index, options.overheads);
    LiberalOptions replay;
    replay.machine = options.machine;
    replay.schedule = options.schedule;
    LiberalResult result = liberal_approximation(shape, replay);
    out.approx = std::move(result.approx);
    result.approx = Trace{};
    out.liberal = std::move(result);
    return out;
  }
};

class LikelyAnalyzer final : public Analyzer {
 public:
  const char* name() const noexcept override { return "likely"; }
  bool produces_trace() const noexcept override { return false; }
  AnalyzerOutput run(const TraceIndex& index,
                     const PipelineOptions& options) const override {
    AnalyzerOutput out;
    out.analyzer = name();
    const DoacrossShape shape =
        extract_doacross_shape(index, options.overheads);
    LikelyOptions opt;
    opt.machine = options.machine;
    opt.schedule = options.schedule;
    opt.samples = options.likely_samples;
    opt.cost_uncertainty = options.likely_uncertainty;
    opt.seed = options.seed;
    opt.threads = options.threads;
    out.distribution = likely_executions(shape, opt);
    return out;
  }
};

}  // namespace

std::unique_ptr<Analyzer> make_analyzer(AnalyzerKind kind) {
  switch (kind) {
    case AnalyzerKind::kTimeBased: return std::make_unique<TimeBasedAnalyzer>();
    case AnalyzerKind::kEventBased:
      return std::make_unique<EventBasedAnalyzer>();
    case AnalyzerKind::kLiberal: return std::make_unique<LiberalAnalyzer>();
    case AnalyzerKind::kLikely: return std::make_unique<LikelyAnalyzer>();
  }
  PERTURB_CHECK_MSG(false, "unknown analyzer kind");
  return nullptr;
}

std::string render_acquire(const AcquireOutcome& outcome) {
  std::string out;
  if (outcome.salvaged)
    out += "salvage: " + outcome.salvage.describe() + "\n";
  if (outcome.repaired) out += trace::render_manifest(outcome.manifest);
  return out;
}

AcquireOutcome trusted_acquire(Trace measured) {
  AcquireOutcome outcome;
  outcome.measured = std::move(measured);
  outcome.ok = true;
  return outcome;
}

const AnalyzerOutput* PipelineResult::output(std::string_view analyzer) const {
  for (const auto& o : outputs)
    if (o.analyzer == analyzer) return &o;
  return nullptr;
}

AnalysisPipeline::AnalysisPipeline(PipelineOptions options)
    : options_(std::move(options)) {}
AnalysisPipeline::~AnalysisPipeline() = default;
AnalysisPipeline::AnalysisPipeline(AnalysisPipeline&&) noexcept = default;
AnalysisPipeline& AnalysisPipeline::operator=(AnalysisPipeline&&) noexcept =
    default;

AnalysisPipeline& AnalysisPipeline::add(AnalyzerKind kind) {
  return add(make_analyzer(kind));
}

AnalysisPipeline& AnalysisPipeline::add(std::unique_ptr<Analyzer> analyzer) {
  PERTURB_CHECK(analyzer != nullptr);
  analyzers_.push_back(std::move(analyzer));
  return *this;
}

AcquireOutcome AnalysisPipeline::acquire_file(const std::string& path) const {
  trace::IoArena arena;
  return acquire_file(path, arena);
}

AcquireOutcome AnalysisPipeline::acquire_file(const std::string& path,
                                              trace::IoArena& arena) const {
  checkpoint(options_, "load");
  if (options_.repair == RepairMode::kOff) {
    Trace loaded = [&] {
      const support::PhaseTimer timer(kPhaseLoad);
      return trace::load(path, arena);
    }();
    return acquire(std::move(loaded));
  }

  AcquireOutcome outcome;
  {
    const support::PhaseTimer timer(kPhaseLoad);
    outcome.measured = trace::load_salvage(path, outcome.salvage, arena);
  }
  if (!outcome.salvage.complete) {
    outcome.salvaged = true;
    outcome.degraded = true;
  }
  if (outcome.measured.empty()) {
    outcome.diagnosis = support::strf(
        "trace is unsalvageable: no events recovered from %s", path.c_str());
    return outcome;
  }
  AcquireOutcome triaged = acquire(std::move(outcome.measured));
  triaged.salvaged = outcome.salvaged;
  triaged.salvage = std::move(outcome.salvage);
  triaged.degraded |= outcome.degraded;
  return triaged;
}

AcquireOutcome AnalysisPipeline::acquire(Trace measured) const {
  AcquireOutcome outcome;
  if (measured.empty()) {
    // A header-only file (declared count 0, or a salvage that recovered
    // nothing) used to flow all the way into the analyzers and produce NaN
    // ratios; fail the acquisition with a diagnosis instead.
    outcome.diagnosis = "trace contains no events; nothing to analyze";
    outcome.measured = std::move(measured);
    return outcome;
  }
  checkpoint(options_, "triage");
  trace::ValidateOptions validate_opts;
  validate_opts.sync_slack = options_.sync_slack;
  {
    const support::PhaseTimer timer(kPhaseTriage);
    outcome.violations = trace::validate(measured, validate_opts);
  }
  kTriageViolations.add(outcome.violations.size());
  if (outcome.violations.empty()) {
    outcome.measured = std::move(measured);
    outcome.ok = true;
    return outcome;
  }

  if (options_.repair == RepairMode::kOff) {
    outcome.diagnosis = support::strf(
        "input trace has %zu causality violation(s); analysis requires a "
        "happened-before-consistent trace (enable repair to triage):\n%s",
        outcome.violations.size(),
        trace::describe(outcome.violations).c_str());
    outcome.measured = std::move(measured);
    return outcome;
  }

  checkpoint(options_, "repair");
  trace::RepairOptions repair_opts;
  repair_opts.aggressive = options_.repair == RepairMode::kAggressive;
  repair_opts.sync_slack = options_.sync_slack;
  auto result = [&] {
    const support::PhaseTimer timer(kPhaseRepair);
    return trace::repair(measured, repair_opts);
  }();
  outcome.repaired = true;
  outcome.manifest = std::move(result.manifest);
  kRepairDropped.add(outcome.manifest.events_dropped);
  kRepairSynthesized.add(outcome.manifest.events_synthesized);
  kRepairAdjusted.add(outcome.manifest.events_adjusted);
  if (outcome.manifest.severity == trace::RepairSeverity::kUnsalvageable) {
    outcome.diagnosis = support::strf(
        "trace is unsalvageable: %zu violation(s) survived repair:\n%s",
        outcome.manifest.remaining.size(),
        trace::describe(outcome.manifest.remaining).c_str());
    outcome.measured = std::move(measured);
    return outcome;
  }
  outcome.degraded =
      outcome.manifest.severity >= trace::RepairSeverity::kLossy;
  outcome.measured = std::move(result.repaired);
  outcome.ok = true;
  return outcome;
}

void AnalysisPipeline::run_analyzers(PipelineResult& result,
                                     const TraceIndex& index,
                                     const Trace* actual,
                                     support::TaskPool& pool) const {
  // The span covers the whole fan-out on the calling thread, so quality
  // scoring inside the workers is part of the analyses stage.
  const support::PhaseTimer timer(kPhaseAnalyses);
  checkpoint(options_, "analyses");
  result.outputs.resize(analyzers_.size());
  // Independent passes over the shared immutable index: each analyzer
  // writes only its own slot, so the run is deterministic at any thread
  // count.
  pool.parallel_for(analyzers_.size(), [&](std::size_t k) {
    const Analyzer& analyzer = *analyzers_[k];
    checkpoint(options_, analyzer.name());
    AnalyzerOutput out = analyzer.run(index, options_);
    if (actual != nullptr && analyzer.produces_trace()) {
      ApproximationQuality q =
          assess(result.acquire.measured, out.approx, *actual);
      q.degraded_input = result.acquire.degraded;
      out.quality = q;
      kQualityScored.add();
    }
    result.outputs[k] = std::move(out);
  });
}

PipelineResult AnalysisPipeline::run(AcquireOutcome acquired,
                                     const Trace* actual) const {
  PipelineResult result;
  result.acquire = std::move(acquired);
  if (!result.acquire.ok) return result;
  kRuns.add();
  kEventsMeasured.add(result.acquire.measured.size());

  checkpoint(options_, "index");
  support::TaskPool pool(options_.threads);
  std::optional<TraceIndex> index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    index.emplace(result.acquire.measured, pool);
  }
  run_analyzers(result, *index, actual, pool);
  return result;
}

PipelineResult AnalysisPipeline::run_fused(Trace measured, const Trace* actual,
                                           support::TaskPool& pool) const {
  PipelineResult result;
  AcquireOutcome& outcome = result.acquire;
  if (measured.empty()) {
    // Same guard as acquire(): header-only inputs fail with a diagnosis
    // instead of producing NaN analysis output.
    outcome.diagnosis = "trace contains no events; nothing to analyze";
    outcome.measured = std::move(measured);
    return result;
  }
  checkpoint(options_, "index");
  trace::ValidateOptions validate_opts;
  validate_opts.sync_slack = options_.sync_slack;
  outcome.measured = std::move(measured);
  kRuns.add();
  kEventsMeasured.add(outcome.measured.size());
  // The index must be built after the trace reaches its final address
  // (outcome.measured); it is read only within this scope.
  std::optional<TraceIndex> index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    index.emplace(outcome.measured, pool);
  }
  {
    const support::PhaseTimer timer(kPhaseTriage);
    outcome.violations = trace::validate(*index, validate_opts);
  }
  kTriageViolations.add(outcome.violations.size());
  if (outcome.violations.empty()) {
    outcome.ok = true;
    run_analyzers(result, *index, actual, pool);
    return result;
  }

  // Violating input: hand the trace to the standard acquire path (diagnosis
  // or repair).  A repaired trace differs from the loaded one, so the shared
  // index is of no use past this point.  (Triage runs — and is counted —
  // again inside acquire; the counters tally work done, not work needed.)
  PipelineResult degraded;
  degraded.acquire = acquire(std::move(outcome.measured));
  if (!degraded.acquire.ok) return degraded;
  std::optional<TraceIndex> repaired_index;
  {
    const support::PhaseTimer timer(kPhaseIndex);
    repaired_index.emplace(degraded.acquire.measured, pool);
  }
  run_analyzers(degraded, *repaired_index, actual, pool);
  return degraded;
}

PipelineResult AnalysisPipeline::run(Trace measured,
                                     const Trace* actual) const {
  support::TaskPool pool(options_.threads);
  return run_fused(std::move(measured), actual, pool);
}

PipelineResult AnalysisPipeline::run_file(const std::string& path,
                                          const Trace* actual) const {
  if (options_.repair != RepairMode::kOff) return run(acquire_file(path), actual);
  checkpoint(options_, "load");
  support::TaskPool pool(options_.threads);
  Trace loaded = [&] {
    const support::PhaseTimer timer(kPhaseLoad);
    return trace::load(path);
  }();
  return run_fused(std::move(loaded), actual, pool);
}

PipelineResult AnalysisPipeline::run_one(const std::string& path,
                                         const Trace* actual,
                                         trace::IoArena& arena) const {
  try {
    support::TaskPool inline_pool(1);
    if (options_.repair != RepairMode::kOff) {
      PipelineResult result;
      result.acquire = acquire_file(path, arena);
      if (!result.acquire.ok) return result;
      kRuns.add();
      kEventsMeasured.add(result.acquire.measured.size());
      std::optional<TraceIndex> index;
      {
        const support::PhaseTimer timer(kPhaseIndex);
        index.emplace(result.acquire.measured);
      }
      run_analyzers(result, *index, actual, inline_pool);
      return result;
    }
    Trace loaded = [&] {
      const support::PhaseTimer timer(kPhaseLoad);
      return trace::load(path, arena);
    }();
    return run_fused(std::move(loaded), actual, inline_pool);
  } catch (const trace::MalformedTraceError& e) {
    // Invalid content (empty file, bad magic, corrupt header): a per-entry
    // failure, same as an unreadable file — one bad input must not abort
    // the batch.
    PipelineResult failed;
    failed.acquire.diagnosis = e.what();
    return failed;
  } catch (const trace::IoError& e) {
    PipelineResult failed;
    failed.acquire.diagnosis = e.what();
    return failed;
  }
}

std::vector<PipelineResult> AnalysisPipeline::run_many(
    const std::vector<std::string>& paths, const Trace* actual) const {
  std::vector<PipelineResult> results(paths.size());
  support::TaskPool pool(options_.threads);
  std::vector<trace::IoArena> arenas(pool.size());
  // One file per task; worker w is the sole user of arenas[w], so each
  // worker's load buffer is allocated once and reused across its block of
  // files.  Each result slot is written by exactly one task.
  pool.parallel_for(paths.size(), [&](std::size_t worker, std::size_t k) {
    results[k] = run_one(paths[k], actual, arenas[worker]);
  });
  return results;
}

std::string render_pipeline_report(const Trace& approx,
                                   const PipelineOptions& options) {
  analysis::WaitClassifier classifier;
  classifier.await_nowait = options.overheads.s_nowait;
  classifier.lock_acquire = options.overheads.lock_acquire;
  classifier.sem_acquire = options.overheads.sem_acquire;
  classifier.barrier_depart = options.overheads.barrier_depart;
  classifier.tolerance = 2;

  const TraceIndex index(approx);
  std::string out;
  const auto waits = analysis::waiting_analysis(index, classifier);
  out += "\n-- waiting --\n" + analysis::render_waiting_table(waits);
  const auto profile = analysis::parallelism_profile(index, classifier);
  out += support::strf(
      "\n-- parallelism --\naverage %.2f (parallel region %.2f)\n",
      profile.average, profile.average_parallel);
  out += "\n-- critical path --\n" +
         analysis::render_critical_path(analysis::critical_path(index));
  return out;
}

}  // namespace perturb::core
