// Analytic perturbation analysis: closed-form prediction (ROADMAP item 2).
//
// The liberal mode answers "what would the de-instrumented loop have done
// under policy S?" by re-simulating the extracted shape.  The analytic mode
// answers the same question without simulating: the extracted shape is
// lowered to the identical replay program (core::lower_doacross_shape) and
// evaluated by the compositional model (model::predict_program), which is
// tick-exact on the single-chain DOACROSS/DOALL shapes the extraction
// produces — so `loop_time` is bit-identical to the liberal re-simulation's,
// at a fraction of the cost and with an uncertainty estimate attached.
#pragma once

#include <string>
#include <vector>

#include "core/liberal.hpp"
#include "trace/trace.hpp"

namespace perturb::core {

struct AnalyticResult {
  /// Predicted de-instrumented loop time; equals LiberalResult::loop_time on
  /// the shapes the model supports exactly (all extracted shapes).
  Tick loop_time = 0;
  /// Model confidence estimate in [0, 1] (see model::Prediction).
  double uncertainty = 0.0;
  /// Why uncertainty is elevated, one reason per structural feature.
  std::vector<std::string> caveats;
};

/// Predicts the extracted loop's de-instrumented run under the asserted
/// scheduling policy, without simulating.
AnalyticResult analytic_approximation(const DoacrossShape& shape,
                                      const LiberalOptions& options);

}  // namespace perturb::core
