// IR lowerings of the Livermore loops for the machine simulator.
//
// Each loop has a per-iteration statement shape: independent statements
// ("pre"), an optional guarded region executed between await and advance
// (the critical section of loops 3, 4 and 17, Figure 3), and trailing
// statements ("post").  Statement costs are cycle approximations of the
// kernels' per-iteration work on a CE-class processor; the three DOACROSS
// loops follow the synchronization placement of Figure 3:
//
//  - loops 3 and 4: the guarded update is compiler-generated scalar code and
//    not a source-level instrumentation site (raw_compute) — the source
//    statement's probe executes before the await, so instrumentation
//    inflates the independent part and *reduces* blocking (§3's analysis of
//    the Table 1 under-approximation);
//  - loop 17: the guarded region consists of several source statements that
//    carry probes, so instrumentation inflates the serialized region and
//    *increases* contention (§3's analysis of the over-approximation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ir.hpp"

namespace perturb::loops {

struct StatementSpec {
  std::string label;
  sim::Cycles cost = 0;
  bool traced = true;  ///< false: not a source-level instrumentation site
  /// Deterministic per-iteration cost variation amplitude: the statement
  /// costs cost + spread*j(i) cycles with j(i) in [-1, 1] keyed on the
  /// statement and iteration.  Models data-dependent branches (loop 17 is an
  /// *implicit conditional* computation); identical in instrumented and
  /// uninstrumented runs.
  sim::Cycles spread = 0;
};

struct LoopIrSpec {
  int number = 0;
  const char* name = "";
  std::vector<StatementSpec> pre;      ///< independent, before the region
  std::vector<StatementSpec> guarded;  ///< between await and advance
  std::vector<StatementSpec> post;     ///< independent, after the region
  std::int64_t distance = 0;           ///< dependence distance (0 = none)
  bool parallelizable = false;         ///< DOALL-safe when distance == 0
};

/// Statement shape of kernel `k` (1..24).
const LoopIrSpec& loop_ir_spec(int k);

/// Lowers one statement spec to an IR node.  `jitter_key` seeds the
/// deterministic per-iteration cost variation when spread > 0; the kernel
/// lowerings key it on (loop number, site ordinal) so instrumented and
/// uninstrumented runs see identical costs.
sim::NodePtr make_statement(std::uint64_t jitter_key, const StatementSpec& s);

/// Appends `stmts` to `block`, keying each statement's jitter on
/// hash(key_base, ordinal-within-block).
void append_spec_statements(sim::Block& block, std::uint64_t key_base,
                            const std::vector<StatementSpec>& stmts);

/// Sequential program: a single seq_loop over all statements (sync structure
/// elided — sequential execution needs none).
sim::Program make_sequential_ir(int k, std::int64_t n);

/// Concurrent program: DOACROSS with advance/await for loops with a
/// dependence distance (3, 4, 17), DOALL for parallelizable loops, and a
/// sequential loop otherwise (matching how the Alliant compiler would run
/// an unparallelizable kernel).
sim::Program make_concurrent_ir(int k, std::int64_t n,
                                sim::Schedule schedule = sim::Schedule::kCyclic);

/// Spec-driven lowerings: the same shapes as the kernel entry points above,
/// but for an arbitrary LoopIrSpec (synthesized workloads, src/workload).
/// `label` names the loop in the IR; sync variables are named from
/// spec.number.  The kernel overloads delegate here, so a LoopIrSpec copied
/// from loop_ir_spec(k) lowers bit-identically.
sim::Program make_sequential_ir(const LoopIrSpec& spec, std::int64_t n,
                                const std::string& label);
sim::Program make_concurrent_ir(const LoopIrSpec& spec, std::int64_t n,
                                sim::Schedule schedule,
                                const std::string& label);

/// Vector-mode parameters (the FX/80 CEs had vector units; §3 ran the suite
/// in scalar, vector, and concurrent modes).
struct VectorParams {
  std::int64_t vector_length = 32;  ///< elements per vector operation
  double element_speedup = 6.0;     ///< per-element speedup over scalar
  sim::Cycles startup = 15;         ///< vector-instruction startup cost
};

/// Vector program: the loop strip-mined into ceil(n / vector_length) strips;
/// each vectorizable statement becomes one vector operation per strip (so a
/// full instrumentation records one event per *strip*, not per iteration —
/// which is why the paper's vector-mode slowdowns were mild).  Kernels with
/// loop-carried dependences fall back to the sequential lowering.
sim::Program make_vector_ir(int k, std::int64_t n,
                            const VectorParams& params = {});

/// Default iteration counts used in the paper-scale experiments.
std::int64_t default_trip(int k);

/// Structural features of kernel `k`'s IR, summarized from its statement
/// shape.  These are the features the analytical model's uncertainty
/// estimate keys on (DESIGN.md §12); exposed here so experiment drivers and
/// benchmarks can group sweeps by feature without re-deriving them from IR.
struct LoopFeatures {
  bool parallelizable = false;   ///< DOALL-safe when distance == 0
  std::int64_t distance = 0;     ///< loop-carried dependence distance
  bool data_dependent = false;   ///< any statement cost varies per iteration
  bool guarded_traced = false;   ///< the guarded region carries probes (lfk17)
  sim::Cycles pre_cost = 0;      ///< summed mean cost before the region
  sim::Cycles guarded_cost = 0;  ///< summed mean cost of the guarded region
  sim::Cycles post_cost = 0;     ///< summed mean cost after the region
};

LoopFeatures loop_features(int k);
LoopFeatures loop_features(const LoopIrSpec& spec);

}  // namespace perturb::loops
