// Native C++ implementations of the 24 Livermore Fortran Kernels (LFK,
// McMahon 1986) — the workload suite of the paper's case study.
//
// These are real numeric kernels operating on deterministic data; each
// returns a checksum so tests can pin behaviour.  The real-threads runtime
// (src/rt) executes kernels 3, 4 and 17 as DOACROSS loops with advance/await
// synchronization, mirroring what the Alliant compiler did; the simulator
// experiments use the IR lowerings in programs.hpp instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perturb::loops {

/// Workspace arrays shared by the kernels, deterministically initialized.
class LfkData {
 public:
  /// `n` controls the primary loop length (the classic suite uses 1001 for
  /// most kernels); `seed` drives the deterministic initialization.
  explicit LfkData(std::int64_t n = 1001, std::uint64_t seed = 1991);

  std::int64_t n() const noexcept { return n_; }

  // 1-D arrays (sized generously; kernels index up to n + small offsets).
  std::vector<double> x, y, z, u, v, w, g, xz;
  // 2-D arrays stored row-major with fixed minor dimensions.
  std::vector<double> px, cx, zx, vy, vs;  // particle / hydro work arrays
  std::vector<double> za, zb, zm, zp, zq, zr, zu, zv, zz;  // kernel 18/23
  std::vector<std::int64_t> ix, ir;        // index arrays for PIC kernels
  std::vector<double> vx, xx, grd;         // kernel 13/14 particle state
  // Scalars used by several kernels.
  double r = 4.86, t = 276.0, q = 0.0, sig = 0.5, stb5 = 0.1;
  double dm22 = 0.1, dm23 = 0.2, dm24 = 0.3, dm25 = 0.4, dm26 = 0.5,
         dm27 = 0.6, dm28 = 0.7;

  /// Re-initializes all arrays to the seeded state.
  void reset();

 private:
  std::int64_t n_;
  std::uint64_t seed_;
};

/// Runs kernel `k` (1..24) once over `data` and returns a checksum of the
/// results.  Throws CheckError for unknown kernel numbers.
double run_kernel(int k, LfkData& data);

/// Human-readable kernel name ("Inner Product", ...).
const char* kernel_name(int k);

/// Number of kernels in the suite.
constexpr int kNumKernels = 24;

/// True for kernels with loop-carried dependences that execute as DOACROSS
/// loops in the paper's concurrent experiments (3, 4, 17).
bool is_doacross_kernel(int k) noexcept;

/// The loop subsets studied by the paper.
const std::vector<int>& sequential_study_loops();  ///< Figure 1's loop set
const std::vector<int>& doacross_study_loops();    ///< {3, 4, 17}

}  // namespace perturb::loops
