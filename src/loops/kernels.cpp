#include "loops/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/prng.hpp"

namespace perturb::loops {

namespace {

/// Checksum that is stable across summation orders used here (sequential).
double checksum(const std::vector<double>& v, std::int64_t count) {
  double acc = 0.0;
  const auto limit = std::min<std::int64_t>(count,
                                            static_cast<std::int64_t>(v.size()));
  for (std::int64_t i = 0; i < limit; ++i)
    acc += v[static_cast<std::size_t>(i)] * static_cast<double>((i % 7) + 1);
  return acc;
}

void fill(std::vector<double>& v, std::size_t size, support::Xoshiro256& rng) {
  v.resize(size);
  for (auto& e : v) e = rng.uniform(0.01, 1.0);
}

void fill_idx(std::vector<std::int64_t>& v, std::size_t size, std::int64_t lo,
              std::int64_t hi, support::Xoshiro256& rng) {
  v.resize(size);
  for (auto& e : v)
    e = lo + static_cast<std::int64_t>(rng.below(
                 static_cast<std::uint64_t>(hi - lo)));
}

}  // namespace

LfkData::LfkData(std::int64_t n, std::uint64_t seed) : n_(n), seed_(seed) {
  PERTURB_CHECK(n >= 32);
  reset();
}

void LfkData::reset() {
  support::Xoshiro256 rng(seed_);
  const auto n = static_cast<std::size_t>(n_);
  const std::size_t pad = 64;
  fill(x, n + pad, rng);
  fill(y, n + pad, rng);
  fill(z, n + pad, rng);
  fill(u, n + pad, rng);
  fill(v, n + pad, rng);
  fill(w, n + pad, rng);
  fill(g, n + pad, rng);
  fill(xz, n + pad, rng);
  fill(px, 16 * (n / 2 + pad), rng);
  fill(cx, 16 * (n / 2 + pad), rng);
  fill(zx, n + pad, rng);
  fill(vy, n + pad, rng);
  fill(vs, n + pad, rng);
  const std::size_t jn = 64 + 2;  // minor dimension for the 2-D hydro kernels
  fill(za, jn * (n / 8 + pad), rng);
  fill(zb, jn * (n / 8 + pad), rng);
  fill(zm, jn * (n / 8 + pad), rng);
  fill(zp, jn * (n / 8 + pad), rng);
  fill(zq, jn * (n / 8 + pad), rng);
  fill(zr, jn * (n / 8 + pad), rng);
  fill(zu, jn * (n / 8 + pad), rng);
  fill(zv, jn * (n / 8 + pad), rng);
  fill(zz, jn * (n / 8 + pad), rng);
  fill_idx(ix, n + pad, 1, static_cast<std::int64_t>(n / 2), rng);
  fill_idx(ir, n + pad, 1, static_cast<std::int64_t>(n / 2), rng);
  fill(vx, n + pad, rng);
  fill(xx, n + pad, rng);
  fill(grd, n + pad, rng);
  // Keep grid coordinates monotone for the PIC kernels.
  for (std::size_t i = 1; i < grd.size(); ++i) grd[i] = grd[i - 1] + 0.5 + grd[i];
  r = 4.86;
  t = 276.0;
  q = 0.0;
  sig = 0.5;
  stb5 = 0.1;
}

namespace {

using I = std::int64_t;
using D = LfkData;

std::size_t ix2(I i, I j, I minor) {
  return static_cast<std::size_t>(i * minor + j);
}

// Kernel 1 — hydro fragment.
double k1(D& d) {
  const I n = d.n();
  for (I k = 0; k < n; ++k)
    d.x[size_t(k)] =
        d.q + d.y[size_t(k)] * (d.r * d.z[size_t(k + 10)] +
                                d.t * d.z[size_t(k + 11)]);
  return checksum(d.x, n);
}

// Kernel 2 — ICCG excerpt (incomplete Cholesky conjugate gradient).
double k2(D& d) {
  const I n = d.n();
  I ipntp = 0;
  for (I m = n; m > 1; m /= 2) {
    const I ipnt = ipntp;
    ipntp += m;
    if (ipntp + m / 2 >= static_cast<I>(d.x.size())) break;
    I i = ipntp - 1;
    for (I k = ipnt + 1; k < ipntp; k += 2) {
      ++i;
      d.x[size_t(i)] = d.x[size_t(k)] -
                       d.v[size_t(k)] * d.x[size_t(k - 1)] -
                       d.v[size_t(k + 1)] * d.x[size_t(k + 1)];
    }
  }
  return checksum(d.x, n);
}

// Kernel 3 — inner product.  The DOACROSS case study loop: the accumulation
// carries a distance-1 dependence through q.
double k3(D& d) {
  const I n = d.n();
  double q = 0.0;
  for (I k = 0; k < n; ++k) q += d.z[size_t(k)] * d.x[size_t(k)];
  d.q = q;
  return q;
}

// Kernel 4 — banded linear equations.
double k4(D& d) {
  const I n = d.n();
  const I m = (1001 - 7) / 2;
  double acc = 0.0;
  for (I k = 6; k < n; k += m) {
    I lw = k - 6;
    double temp = d.x[size_t(k - 1)];
    for (I j = 4; j < n; j += 5) {
      temp -= d.xz[size_t(lw)] * d.y[size_t(j)];
      ++lw;
      if (lw >= static_cast<I>(d.xz.size())) break;
    }
    d.x[size_t(k - 1)] = d.y[size_t(4)] * temp;
    acc += d.x[size_t(k - 1)];
  }
  return acc + checksum(d.x, n);
}

// Kernel 5 — tri-diagonal elimination, below diagonal.
double k5(D& d) {
  const I n = d.n();
  for (I i = 1; i < n; ++i)
    d.x[size_t(i)] = d.z[size_t(i)] * (d.y[size_t(i)] - d.x[size_t(i - 1)]);
  return checksum(d.x, n);
}

// Kernel 6 — general linear recurrence equations.
double k6(D& d) {
  const I n = std::min<I>(d.n(), 64);  // O(n^2); classic uses n=64
  for (I i = 1; i < n; ++i) {
    double s = 0.0;
    for (I j = 0; j < i; ++j)
      s += d.zx[size_t(j)] * d.y[size_t((i - j) * 8 % (n * 8 - 1))];
    d.w[size_t(i)] = d.w[size_t(i)] + 0.01 + s;
  }
  return checksum(d.w, n);
}

// Kernel 7 — equation of state fragment.
double k7(D& d) {
  const I n = d.n();
  for (I k = 0; k < n; ++k) {
    d.x[size_t(k)] =
        d.u[size_t(k)] +
        d.r * (d.z[size_t(k)] + d.r * d.y[size_t(k)]) +
        d.t * (d.u[size_t(k + 3)] +
               d.r * (d.u[size_t(k + 2)] + d.r * d.u[size_t(k + 1)]) +
               d.t * (d.u[size_t(k + 6)] +
                      d.q * (d.u[size_t(k + 5)] + d.q * d.u[size_t(k + 4)])));
  }
  return checksum(d.x, n);
}

// Kernel 8 — ADI integration (condensed to the classic two-plane sweep).
double k8(D& d) {
  const I nl = 2;
  const I ny = std::min<I>(d.n() / 8, 100);
  const I jn = 64;
  double acc = 0.0;
  for (I l = 0; l < nl; ++l) {
    for (I ky = 1; ky < ny; ++ky) {
      for (I kx = 1; kx < jn - 1; ++kx) {
        const std::size_t i = ix2(ky, kx, jn + 2);
        const double du1 = d.zu[i + 1] - d.zu[i - 1];
        const double du2 = d.zv[i + 1] - d.zv[i - 1];
        const double du3 = d.zz[i + 1] - d.zz[i - 1];
        d.za[i] = d.zb[i] + d.sig * (du1 + du2 + du3) * d.zm[i];
        d.zr[i] = d.za[i] * d.stb5 + d.zq[i];
        acc += d.zr[i] * 1e-3;
      }
    }
  }
  return acc;
}

// Kernel 9 — integrate predictors.
double k9(D& d) {
  const I n = std::min<I>(d.n(), static_cast<I>(d.px.size()) / 16 - 1);
  for (I i = 0; i < n; ++i) {
    double* p = &d.px[size_t(i * 16)];
    const double* c = &d.cx[size_t(i * 16)];
    p[0] = d.dm28 * p[12] + d.dm27 * p[11] + d.dm26 * p[10] +
           d.dm25 * p[9] + d.dm24 * p[8] + d.dm23 * p[7] +
           d.dm22 * p[6] + c[0] * (p[4] + p[5]) + p[2];
  }
  return checksum(d.px, n * 16);
}

// Kernel 10 — difference predictors.
double k10(D& d) {
  const I n = std::min<I>(d.n(), static_cast<I>(d.px.size()) / 16 - 1);
  for (I i = 0; i < n; ++i) {
    double* p = &d.px[size_t(i * 16)];
    const double ar = d.cx[size_t(i * 16) + 4];
    const double br = ar - p[4];
    p[4] = ar;
    const double cr = br - p[5];
    p[5] = br;
    p[6] = cr - p[6];
  }
  return checksum(d.px, n * 16);
}

// Kernel 11 — first sum (prefix sum).
double k11(D& d) {
  const I n = d.n();
  d.x[0] = d.y[0];
  for (I k = 1; k < n; ++k) d.x[size_t(k)] = d.x[size_t(k - 1)] + d.y[size_t(k)];
  return checksum(d.x, n);
}

// Kernel 12 — first difference.
double k12(D& d) {
  const I n = d.n();
  for (I k = 0; k < n; ++k)
    d.x[size_t(k)] = d.y[size_t(k + 1)] - d.y[size_t(k)];
  return checksum(d.x, n);
}

// Kernel 13 — 2-D particle-in-cell.
double k13(D& d) {
  const I n = std::min<I>(d.n() / 2, static_cast<I>(d.ix.size()) - 1);
  double acc = 0.0;
  for (I ip = 0; ip < n; ++ip) {
    const I i1 = std::clamp<I>(d.ix[size_t(ip)], 1, n - 1);
    const I j1 = std::clamp<I>(d.ir[size_t(ip)], 1, n - 1);
    d.vx[size_t(ip)] += d.u[size_t(i1)] + d.v[size_t(j1)];
    d.xx[size_t(ip)] += d.vx[size_t(ip)];
    d.y[size_t(i1)] += 1.0;
    acc += d.xx[size_t(ip)];
  }
  return acc;
}

// Kernel 14 — 1-D particle-in-cell.
double k14(D& d) {
  const I n = std::min<I>(d.n(), static_cast<I>(d.vx.size()) - 1);
  double acc = 0.0;
  for (I k = 0; k < n; ++k) {
    const I ixk = std::clamp<I>(static_cast<I>(d.grd[size_t(k)]) % n, 1, n - 1);
    d.xx[size_t(k)] = d.grd[size_t(ixk)] + (d.x[size_t(k)] - 0.5);
    d.vx[size_t(k)] += d.xx[size_t(k)] * 1e-3;
    acc += d.vx[size_t(k)];
  }
  return acc;
}

// Kernel 15 — casual Fortran: 2-D array sweep with conditionals.
double k15(D& d) {
  const I ng = 7;
  const I nz = std::min<I>(d.n() / 8, 100);
  const I jn = 64 + 2;
  double acc = 0.0;
  for (I j = 1; j < ng; ++j) {
    for (I k = 1; k < nz - 1; ++k) {
      const std::size_t i = ix2(j, k, jn);
      if (d.vy[size_t(k)] > 0.0) {
        d.vs[size_t(k)] =
            d.za[i] > 0.0 ? d.za[i] + d.zb[i] : d.zb[i] - d.za[i];
      } else {
        d.vs[size_t(k)] = d.za[i] * d.zb[i];
      }
      acc += d.vs[size_t(k)];
    }
  }
  return acc;
}

// Kernel 16 — Monte Carlo search loop.
double k16(D& d) {
  const I n = d.n();
  I m = 0;
  I hits = 0;
  for (I k = 0; k < n; ++k) {
    const I j = (k * 1731 + 17) % n;
    if (d.z[size_t(j)] < d.x[size_t(k)]) {
      ++hits;
      m = j;
    }
  }
  return static_cast<double>(hits) + static_cast<double>(m) * 1e-6;
}

// Kernel 17 — implicit, conditional computation.  The second DOACROSS case
// study loop: the recurrence through scale/xnm is a serial chain with
// data-dependent branches.
double k17(D& d) {
  const I n = d.n();
  double scale = 5.0 / 3.0;
  double xnm = 1.0 / 3.0;
  double e6 = 1.03 / 3.07;
  I i = n - 1;
  while (i >= 0) {
    const double e3 = d.xz[size_t(i)] * scale + e6;
    const double xnei = d.xx[size_t(i)];
    double xnc = scale * d.x[size_t(i)];
    if (xnm * 4.0 > xnc || xnei > xnc) {
      e6 = xnm * d.vs[size_t(i)] + e3 * 1e-3;
      d.vx[size_t(i)] = e6;
      xnm = xnei - 1e-3 * xnm;
    } else {
      e6 = e3 * xnm - 1e-4 * xnc;
      d.vx[size_t(i)] = e6;
      xnm = xnei;
    }
    --i;
  }
  return checksum(d.vx, n) + xnm + e6;
}

// Kernel 18 — 2-D explicit hydrodynamics fragment.
double k18(D& d) {
  const I kn = std::min<I>(d.n() / 8, 100);
  const I jn = 64;
  const I minor = jn + 2;
  for (I k = 1; k < kn - 1; ++k) {
    for (I j = 1; j < jn; ++j) {
      const std::size_t i = ix2(k, j, minor);
      d.za[i] = (d.zp[i + minor] + d.zq[i + minor] - d.zp[i] - d.zq[i]) *
                (d.zr[i] + d.zr[i - 1]) /
                (d.zm[i] + d.zm[i + minor] + 1.0);
      d.zb[i] = (d.zp[i] + d.zq[i] - d.zp[i - 1] - d.zq[i - 1]) *
                (d.zr[i] + d.zr[i - minor]) /
                (d.zm[i] + d.zm[i - 1] + 1.0);
    }
  }
  for (I k = 1; k < kn - 1; ++k) {
    for (I j = 1; j < jn; ++j) {
      const std::size_t i = ix2(k, j, minor);
      d.zu[i] += d.stb5 * (d.za[i] * (d.zz[i] - d.zz[i + 1]) -
                           d.za[i - 1] * (d.zz[i] - d.zz[i - 1]));
      d.zv[i] += d.stb5 * (d.zb[i] * (d.zz[i] - d.zz[i - minor]) -
                           d.zb[i - minor] * (d.zz[i] - d.zz[i + minor]));
    }
  }
  return checksum(d.zu, kn * minor) + checksum(d.zv, kn * minor);
}

// Kernel 19 — general linear recurrence equations (two sweeps).
double k19(D& d) {
  const I n = std::min<I>(d.n(), 101);
  // The recurrence through stb5 must stay contractive for arbitrary seeded
  // data, so the feedback term is scaled down (the classic kernel relies on
  // carefully sized inputs).
  double stb5 = d.stb5;
  for (I k = 0; k < n; ++k) {
    d.x[size_t(k)] = d.g[size_t(k)] + d.r * d.z[size_t(k)] + 0.035 * stb5;
    stb5 = 0.5 * (d.x[size_t(k)] - stb5);
  }
  for (I i = 0; i < n; ++i) {
    const I k = n - i - 1;
    d.x[size_t(k)] = d.g[size_t(k)] + d.r * d.z[size_t(k)] + 0.035 * stb5;
    stb5 = 0.5 * (d.x[size_t(k)] - stb5);
  }
  return checksum(d.x, n) + stb5;
}

// Kernel 20 — discrete ordinates transport.
double k20(D& d) {
  const I n = d.n();
  double xx = 0.01;
  for (I k = 0; k < n; ++k) {
    const double di = d.y[size_t(k)] - d.g[size_t(k)] /
                                           (xx + d.z[size_t(k)] + 1e-9);
    const double dn =
        std::clamp(di > 0.0 ? d.z[size_t(k)] / di : 0.2, 0.1, 0.2);
    d.x[size_t(k)] = ((d.w[size_t(k)] + d.v[size_t(k)] * dn) * xx +
                      d.u[size_t(k)]) /
                     (d.vx[size_t(k)] + d.v[size_t(k)] * dn + 1.0);
    xx = (d.x[size_t(k)] - d.y[size_t(k)]) * dn + xx;
  }
  return checksum(d.x, n) + xx;
}

// Kernel 21 — matrix * matrix product.
double k21(D& d) {
  const I m = 25;
  const I minor = 64 + 2;
  for (I k = 0; k < m; ++k)
    for (I i = 0; i < m; ++i)
      for (I j = 0; j < m; ++j)
        d.px[ix2(j, i, minor) % d.px.size()] +=
            d.vy[size_t(k)] * d.cx[ix2(j, k, minor) % d.cx.size()] * 1e-3;
  return checksum(d.px, m * minor);
}

// Kernel 22 — Planckian distribution.
double k22(D& d) {
  const I n = d.n();
  const double expmax = 20.0;
  d.u[size_t(n - 1)] = 0.99 * expmax * d.v[size_t(n - 1)];
  for (I k = 0; k < n; ++k) {
    d.y[size_t(k)] = d.u[size_t(k)] / (d.v[size_t(k)] + 1e-9);
    d.w[size_t(k)] =
        d.x[size_t(k)] / (std::exp(std::min(d.y[size_t(k)], expmax)) - 0.99);
  }
  return checksum(d.w, n);
}

// Kernel 23 — 2-D implicit hydrodynamics fragment.
double k23(D& d) {
  const I kn = std::min<I>(d.n() / 8, 100);
  const I jn = 64;
  const I minor = jn + 2;
  for (I j = 1; j < jn; ++j) {
    for (I k = 1; k < kn - 1; ++k) {
      const std::size_t i = ix2(k, j, minor);
      const double qa = d.za[i + minor] * d.zr[i] + d.za[i - minor] * d.zb[i] +
                        d.za[i + 1] * d.zu[i] + d.za[i - 1] * d.zv[i] +
                        d.zz[i];
      d.za[i] += 0.175 * (qa - d.za[i]);
    }
  }
  return checksum(d.za, kn * minor);
}

// Kernel 24 — find location of first minimum in array.
double k24(D& d) {
  const I n = d.n();
  d.x[size_t(n / 2)] = -1.0e10;
  I m = 0;
  for (I k = 1; k < n; ++k)
    if (d.x[size_t(k)] < d.x[size_t(m)]) m = k;
  return static_cast<double>(m);
}

}  // namespace

double run_kernel(int k, LfkData& data) {
  switch (k) {
    case 1: return k1(data);
    case 2: return k2(data);
    case 3: return k3(data);
    case 4: return k4(data);
    case 5: return k5(data);
    case 6: return k6(data);
    case 7: return k7(data);
    case 8: return k8(data);
    case 9: return k9(data);
    case 10: return k10(data);
    case 11: return k11(data);
    case 12: return k12(data);
    case 13: return k13(data);
    case 14: return k14(data);
    case 15: return k15(data);
    case 16: return k16(data);
    case 17: return k17(data);
    case 18: return k18(data);
    case 19: return k19(data);
    case 20: return k20(data);
    case 21: return k21(data);
    case 22: return k22(data);
    case 23: return k23(data);
    case 24: return k24(data);
    default:
      PERTURB_CHECK_MSG(false, "unknown Livermore kernel number");
      return 0.0;
  }
}

const char* kernel_name(int k) {
  switch (k) {
    case 1: return "Hydro Fragment";
    case 2: return "ICCG Excerpt";
    case 3: return "Inner Product";
    case 4: return "Banded Linear Equations";
    case 5: return "Tri-Diagonal Elimination";
    case 6: return "General Linear Recurrence";
    case 7: return "Equation of State Fragment";
    case 8: return "ADI Integration";
    case 9: return "Integrate Predictors";
    case 10: return "Difference Predictors";
    case 11: return "First Sum";
    case 12: return "First Difference";
    case 13: return "2-D Particle in Cell";
    case 14: return "1-D Particle in Cell";
    case 15: return "Casual Fortran";
    case 16: return "Monte Carlo Search";
    case 17: return "Implicit, Conditional Computation";
    case 18: return "2-D Explicit Hydrodynamics";
    case 19: return "General Linear Recurrence II";
    case 20: return "Discrete Ordinates Transport";
    case 21: return "Matrix Product";
    case 22: return "Planckian Distribution";
    case 23: return "2-D Implicit Hydrodynamics";
    case 24: return "First Minimum";
    default: return "Unknown";
  }
}

bool is_doacross_kernel(int k) noexcept { return k == 3 || k == 4 || k == 17; }

const std::vector<int>& sequential_study_loops() {
  static const std::vector<int> loops = {1, 2, 6, 7, 8, 13, 16, 20, 22};
  return loops;
}

const std::vector<int>& doacross_study_loops() {
  static const std::vector<int> loops = {3, 4, 17};
  return loops;
}

}  // namespace perturb::loops
