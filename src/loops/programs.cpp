#include "loops/programs.hpp"

#include "loops/kernels.hpp"
#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace perturb::loops {

namespace {

using sim::Cycles;

std::vector<LoopIrSpec> build_specs() {
  std::vector<LoopIrSpec> specs(25);
  auto set = [&](int k, std::vector<StatementSpec> pre,
                 std::vector<StatementSpec> guarded,
                 std::vector<StatementSpec> post, std::int64_t distance,
                 bool parallel) {
    specs[static_cast<std::size_t>(k)] = {k, "", std::move(pre),
                                          std::move(guarded), std::move(post),
                                          distance, parallel};
  };

  // Independent / vectorizable kernels: statement shapes sized so that full
  // statement instrumentation yields the Figure 1 slowdown spread (cheap
  // statements → large ratios).
  set(1, {{"x[k]=q+y[k]*(r*z[k+10]+t*z[k+11])", 22}}, {}, {}, 0, true);
  set(2, {{"i=ipntp-k", 24}, {"x[i]=x[k]-v[k]*x[k-1]-v[k+1]*x[k+1]", 48}}, {},
      {}, 0, false);
  set(5, {{"x[i]=z[i]*(y[i]-x[i-1])", 30}}, {}, {}, 0, false);
  set(6, {{"s+=zx[j]*y[i-j]", 34}, {"w[i]+=0.01+s", 36}}, {}, {}, 0, false);
  set(7, {{"x[k]=u[k]+r*(z[k]+r*y[k])+t*(...)", 46}}, {}, {}, 0, true);
  set(8, {{"du=zu[i+1]-zu[i-1]", 38},
          {"za[i]=zb[i]+sig*du*zm[i]", 52},
          {"zr[i]=za[i]*stb5+zq[i]", 40}},
      {}, {}, 0, true);
  set(9, {{"px[0]=dm*px[...]+c0*(px[4]+px[5])+px[2]", 64}}, {}, {}, 0, true);
  set(10, {{"ar=cx[4]; br=ar-px[4]", 30}, {"cr=br-px[5]; px[6]=cr-px[6]", 34}},
      {}, {}, 0, true);
  set(11, {{"x[k]=x[k-1]+y[k]", 18}}, {}, {}, 0, false);
  set(12, {{"x[k]=y[k+1]-y[k]", 16}}, {}, {}, 0, true);
  set(13, {{"i1=ix[ip]; j1=ir[ip]", 44},
           {"vx[ip]+=u[i1]+v[j1]", 56},
           {"xx[ip]+=vx[ip]", 48},
           {"y[i1]+=1.0", 62}},
      {}, {}, 0, true);
  set(14, {{"ixk=grd[k]", 36}, {"xx[k]=grd[ixk]+x[k]-0.5", 44},
           {"vx[k]+=xx[k]*1e-3", 38}},
      {}, {}, 0, true);
  set(15, {{"branch vy[k]", 28}, {"vs[k]=f(za,zb)", 52}}, {}, {}, 0, true);
  set(16, {{"j=hash(k)", 70}, {"compare z[j],x[k]", 96}, {"update m", 94}},
      {}, {}, 0, false);
  set(18, {{"za[i]=flux a", 88}, {"zb[i]=flux b", 86}, {"zu[i],zv[i] update", 92}},
      {}, {}, 0, true);
  set(19, {{"x[k]=g[k]+r*z[k]+t*stb5", 34}, {"stb5=x[k]-stb5", 22}}, {}, {},
      0, false);
  set(20, {{"di=y[k]-g[k]/(xx+z[k])", 92},
           {"dn=clamp(z[k]/di)", 88},
           {"x[k]=((w[k]+v[k]*dn)*xx+u[k])/(vx[k]+v[k]*dn)", 110},
           {"xx=(x[k]-y[k])*dn+xx", 90}},
      {}, {}, 0, false);
  set(21, {{"px[j][i]+=vy[k]*cx[j][k]", 54}}, {}, {}, 0, true);
  set(22, {{"y[k]=u[k]/v[k]", 92}, {"w[k]=x[k]/(exp(y[k])-1)", 148}}, {}, {},
      0, true);
  set(23, {{"qa=stencil(za,zr,zb,zu,zv,zz)", 120}, {"za[i]+=0.175*(qa-za[i])", 56}},
      {}, {}, 0, true);
  set(24, {{"compare x[k]<x[m]", 20}, {"update m", 12}}, {}, {}, 0, false);

  // --- the DOACROSS case-study loops (Figure 3 structure) ---

  // Loop 3, Inner Product: DOACROSS with a distance-1 chain through the
  // shared accumulator.  The source statement (the product) is instrumented;
  // the guarded update is compiler-generated scalar code (untraced).
  set(3, {{"t=z[k]*x[k]", 36}},
      {{"q=q+t", /*cost=*/6, /*traced=*/false}}, {}, 1, false);

  // Loop 4, Banded Linear Equations: larger independent band work, small
  // guarded update of x[k-1].
  set(4, {{"temp-=xz[lw]*y[j] (band)", 90}, {"lw++, loop control", 61}},
      {{"x[k-1]=y[4]*temp", /*cost=*/32, /*traced=*/false}}, {}, 1, false);

  // Loop 17, Implicit Conditional Computation: the guarded region is *large*
  // and contains source statements (probes land inside the critical
  // section).  The independent work keeps the uninstrumented execution just
  // below chain saturation, so waiting is scattered and data-dependent (the
  // conditional branches vary iteration costs) — Table 3 / Figures 4 and 5;
  // instrumentation inside the region then tips the loop into heavy
  // contention (Table 1's over-approximation).
  set(17, {{"e3=xz[i]*scale+e6 (setup)", 230, true, 40},
           {"xnei=xx[i]; xnc=scale*x[i]", 230, true, 40},
           {"branch select xnm*4>xnc", 230, true, 40}},
      {{"e6 update", 30, true, 12},
       {"vx[i]=e6", 30, true, 12},
       {"xnm update", 30, true, 12}},
      {{"loop index update", 60}}, 1, false);

  for (int k = 1; k <= 24; ++k) {
    specs[static_cast<std::size_t>(k)].number = k;
    specs[static_cast<std::size_t>(k)].name = kernel_name(k);
  }
  return specs;
}

const std::vector<LoopIrSpec>& specs() {
  static const std::vector<LoopIrSpec> s = build_specs();
  return s;
}

}  // namespace

sim::NodePtr make_statement(std::uint64_t jitter_key, const StatementSpec& s) {
  sim::NodePtr node;
  if (s.spread > 0) {
    // Deterministic per-iteration variation keyed on (jitter_key,
    // iteration): identical across instrumented and uninstrumented runs.
    const sim::Cycles base = s.cost;
    const sim::Cycles spread = s.spread;
    node = sim::compute_fn(s.label, [jitter_key, base, spread](std::int64_t i) {
      const double j =
          support::keyed_jitter(jitter_key, 0, static_cast<std::uint64_t>(i));
      const auto c = base + static_cast<sim::Cycles>(
                                std::llround(static_cast<double>(spread) * j));
      return c < 0 ? sim::Cycles{0} : c;
    });
  } else {
    node = sim::compute(s.label, s.cost);
  }
  if (!s.traced) node->traced = false;
  return node;
}

void append_spec_statements(sim::Block& block, std::uint64_t key_base,
                            const std::vector<StatementSpec>& stmts) {
  for (const auto& s : stmts) {
    const std::uint64_t key =
        support::hash_combine(key_base, block.nodes.size());
    block.nodes.push_back(make_statement(key, s));
  }
}

const LoopIrSpec& loop_ir_spec(int k) {
  PERTURB_CHECK_MSG(k >= 1 && k <= 24, "kernel number out of range");
  return specs()[static_cast<std::size_t>(k)];
}

sim::Program make_sequential_ir(const LoopIrSpec& spec, std::int64_t n,
                                const std::string& label) {
  const auto key_base = static_cast<std::uint64_t>(spec.number);
  sim::Program prog;
  sim::Block body;
  append_spec_statements(body, key_base, spec.pre);
  append_spec_statements(body, key_base, spec.guarded);
  append_spec_statements(body, key_base, spec.post);
  prog.root().nodes.push_back(sim::seq_loop(label, n, std::move(body)));
  prog.finalize();
  return prog;
}

sim::Program make_sequential_ir(int k, std::int64_t n) {
  return make_sequential_ir(loop_ir_spec(k), n, support::strf("lfk%d", k));
}

sim::Program make_concurrent_ir(const LoopIrSpec& spec, std::int64_t n,
                                sim::Schedule schedule,
                                const std::string& label) {
  if (spec.distance == 0 && !spec.parallelizable)
    return make_sequential_ir(spec, n, label);

  const auto key_base = static_cast<std::uint64_t>(spec.number);
  sim::Program prog;
  sim::Block body;
  append_spec_statements(body, key_base, spec.pre);
  if (spec.distance > 0) {
    const auto var = prog.declare_sync_var(support::strf("S%d", spec.number));
    body.nodes.push_back(sim::await(var, {1, -spec.distance}));
    append_spec_statements(body, key_base, spec.guarded);
    body.nodes.push_back(sim::advance(var, {1, 0}));
  } else {
    append_spec_statements(body, key_base, spec.guarded);
  }
  append_spec_statements(body, key_base, spec.post);
  prog.root().nodes.push_back(sim::par_loop(
      label,
      spec.distance > 0 ? sim::LoopKind::kDoacross : sim::LoopKind::kDoall,
      schedule, n, std::move(body)));
  prog.finalize();
  return prog;
}

sim::Program make_concurrent_ir(int k, std::int64_t n, sim::Schedule schedule) {
  return make_concurrent_ir(loop_ir_spec(k), n, schedule,
                            support::strf("lfk%d", k));
}

sim::Program make_vector_ir(int k, std::int64_t n, const VectorParams& params) {
  const LoopIrSpec& spec = loop_ir_spec(k);
  if (!spec.parallelizable) return make_sequential_ir(k, n);
  PERTURB_CHECK(params.vector_length > 0);
  PERTURB_CHECK(params.element_speedup > 0.0);

  const std::int64_t vl = params.vector_length;
  const std::int64_t strips = (n + vl - 1) / vl;

  sim::Program prog;
  sim::Block body;
  auto add_vector_statements = [&](const std::vector<StatementSpec>& stmts) {
    for (const auto& s : stmts) {
      // One vector operation per strip: startup plus the scalar per-element
      // cost compressed by the vector unit.  The last strip is partial.
      const sim::Cycles unit = s.cost;
      const sim::Cycles startup = params.startup;
      const double speedup = params.element_speedup;
      auto node = sim::compute_fn(
          s.label + " (vector)",
          [unit, startup, speedup, vl, n](std::int64_t strip) {
            const std::int64_t elems = std::min(vl, n - strip * vl);
            const double work =
                static_cast<double>(unit) * static_cast<double>(elems) / speedup;
            return startup + static_cast<sim::Cycles>(std::llround(work));
          });
      if (!s.traced) node->traced = false;
      body.nodes.push_back(std::move(node));
    }
  };
  add_vector_statements(spec.pre);
  add_vector_statements(spec.guarded);
  add_vector_statements(spec.post);
  prog.root().nodes.push_back(
      sim::seq_loop(support::strf("lfk%d-vector", k), strips, std::move(body)));
  prog.finalize();
  return prog;
}

std::int64_t default_trip(int k) {
  switch (k) {
    case 6: return 64;      // O(n^2) recurrence
    case 8: return 200;     // 2-D sweeps
    case 18: return 200;
    case 21: return 400;
    case 23: return 200;
    default: return 1001;   // the classic LFK length
  }
}

LoopFeatures loop_features(int k) { return loop_features(loop_ir_spec(k)); }

LoopFeatures loop_features(const LoopIrSpec& spec) {
  LoopFeatures f;
  f.parallelizable = spec.parallelizable;
  f.distance = spec.distance;
  const auto fold = [&f](const std::vector<StatementSpec>& stmts,
                         sim::Cycles& total) {
    for (const StatementSpec& s : stmts) {
      total += s.cost;
      f.data_dependent = f.data_dependent || s.spread > 0;
    }
  };
  fold(spec.pre, f.pre_cost);
  fold(spec.guarded, f.guarded_cost);
  fold(spec.post, f.post_cost);
  for (const StatementSpec& s : spec.guarded)
    f.guarded_traced = f.guarded_traced || s.traced;
  return f;
}

}  // namespace perturb::loops
