#include "rt/tracer.hpp"

#include "support/check.hpp"

namespace perturb::rt {

Tracer::Tracer(std::uint32_t num_threads, std::size_t capacity_per_thread)
    : buffers_(num_threads), epoch_(std::chrono::steady_clock::now()) {
  PERTURB_CHECK(num_threads > 0);
  for (auto& b : buffers_) b.events.reserve(capacity_per_thread);
}

trace::Trace Tracer::harvest(const std::string& name) {
  trace::TraceInfo info;
  info.name = name;
  info.num_procs = num_threads();
  info.ticks_per_us = 1000.0;  // nanosecond ticks

  std::vector<trace::Trace> parts;
  parts.reserve(buffers_.size());
  for (auto& b : buffers_) {
    trace::Trace part;
    for (const auto& e : b.events) part.append(e);
    part.sort_canonical();  // steady_clock is monotone per thread already
    parts.push_back(std::move(part));
    b.events.clear();
    b.dropped = 0;
  }
  return trace::Trace::merge(info, parts);
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b.dropped;
  return total;
}

}  // namespace perturb::rt
