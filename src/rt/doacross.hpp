// Real-threads DOACROSS executor.
//
// Runs iterations 0..n-1 across worker threads with cyclic assignment
// (Alliant-style) and constant-distance advance/await synchronization around
// a guarded section — the runtime twin of the simulator's parallel loops.
// The traced variant records the same event vocabulary the simulator emits
// (iteration markers, awaitB/awaitE, advance, barrier), so traces captured
// from real executions feed directly into src/core's perturbation analyses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rt/tracer.hpp"
#include "trace/trace.hpp"

namespace perturb::rt {

/// Per-iteration body, split at the synchronization points.
struct DoacrossBody {
  /// Independent work, executed before the await.
  std::function<void(std::int64_t iter)> pre;
  /// Guarded work, executed between await(iter - distance) and advance(iter).
  std::function<void(std::int64_t iter)> guarded;
  /// Independent work after the advance (may be empty).
  std::function<void(std::int64_t iter)> post;
};

/// Iteration assignment policy (mirrors the simulator's schedulers).
enum class RtSchedule : std::uint8_t {
  kCyclic,  ///< thread t runs iterations t, t+T, ...
  kSelf,    ///< dynamic self-scheduling off a shared atomic counter
};

struct DoacrossOptions {
  std::int64_t iterations = 0;
  std::int64_t distance = 1;     ///< dependence distance; 0 = DOALL
  std::uint32_t num_threads = 2;
  RtSchedule schedule = RtSchedule::kCyclic;
};

/// Fixed instrumentation-site ids used by the traced executor, mirroring a
/// finalized IR program's pre-order numbering.
struct DoacrossSites {
  static constexpr trace::EventId kLoop = 1;
  static constexpr trace::EventId kPre = 2;
  static constexpr trace::EventId kAwait = 3;
  static constexpr trace::EventId kGuarded = 4;
  static constexpr trace::EventId kAdvance = 5;
  static constexpr trace::EventId kPost = 6;
  static constexpr trace::ObjectId kSyncVar = 1;
};

/// Executes the loop without tracing.
void run_doacross(const DoacrossBody& body, const DoacrossOptions& options);

/// Executes the loop with full tracing and returns the measured trace
/// (nanosecond ticks).  The recording cost is real: this trace is perturbed
/// exactly the way the paper's measured traces were.
trace::Trace run_doacross_traced(const DoacrossBody& body,
                                 const DoacrossOptions& options,
                                 const std::string& trace_name);

}  // namespace perturb::rt
