// Advance/await synchronization and barriers over std::atomic.
//
// The software analogue of the Alliant FX/80 synchronization hardware the
// paper's DOACROSS loops used: a SyncVar stores the history of advance
// operations (one flag per index), an await spins (with yields — this runs
// correctly even on a single hardware thread) until its index is advanced.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "support/check.hpp"

namespace perturb::rt {

class SyncVar {
 public:
  /// Indices 0 .. max_index-1 may be advanced/awaited.
  explicit SyncVar(std::int64_t max_index)
      : size_(max_index),
        flags_(std::make_unique<std::atomic<std::uint8_t>[]>(
            static_cast<std::size_t>(max_index))) {
    PERTURB_CHECK(max_index > 0);
    for (std::int64_t i = 0; i < max_index; ++i)
      flags_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }

  /// Marks index `i` advanced.  Release order: writes before the advance are
  /// visible to any thread whose await(i) succeeds.
  void advance(std::int64_t i) {
    PERTURB_CHECK(i >= 0 && i < size_);
    flags_[static_cast<std::size_t>(i)].store(1, std::memory_order_release);
  }

  /// True if index `i` has been advanced.
  bool poll(std::int64_t i) const {
    PERTURB_CHECK(i >= 0 && i < size_);
    return flags_[static_cast<std::size_t>(i)].load(
               std::memory_order_acquire) != 0;
  }

  /// Blocks (spin + yield) until index `i` is advanced.  Indices < 0 are
  /// dependence-free and return immediately, matching the simulator.
  /// Returns true if waiting was required.
  bool await(std::int64_t i) const {
    if (i < 0) return false;
    if (poll(i)) return false;
    do {
      std::this_thread::yield();
    } while (!poll(i));
    return true;
  }

  /// Clears all flags (between loop executions).
  void reset() {
    for (std::int64_t i = 0; i < size_; ++i)
      flags_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }

 private:
  std::int64_t size_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> flags_;
};

/// Counting semaphore over an atomic permit counter (spin + yield).  The
/// real-threads analogue of the simulator's semaphore regions.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(std::int64_t capacity) : permits_(capacity) {
    PERTURB_CHECK(capacity >= 1);
  }

  /// P(): takes a permit, spinning until one is free.  Returns true if
  /// waiting was required.
  bool acquire() {
    bool waited = false;
    for (;;) {
      std::int64_t available = permits_.load(std::memory_order_acquire);
      while (available > 0) {
        if (permits_.compare_exchange_weak(available, available - 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
          return waited;
      }
      waited = true;
      std::this_thread::yield();
    }
  }

  /// Non-blocking P(): true on success.
  bool try_acquire() {
    std::int64_t available = permits_.load(std::memory_order_acquire);
    while (available > 0) {
      if (permits_.compare_exchange_weak(available, available - 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
        return true;
    }
    return false;
  }

  /// V(): returns a permit.
  void release() { permits_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<std::int64_t> permits_;
};

/// Sense-reversing spin barrier (yields while waiting).
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants)
      : participants_(participants), remaining_(participants) {
    PERTURB_CHECK(participants > 0);
  }

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    while (sense_.load(std::memory_order_acquire) != my_sense)
      std::this_thread::yield();
  }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace perturb::rt
