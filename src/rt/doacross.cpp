#include "rt/doacross.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "rt/sync.hpp"
#include "support/check.hpp"

namespace perturb::rt {

namespace {

using trace::EventKind;
using trace::ProcId;

void validate(const DoacrossOptions& o) {
  PERTURB_CHECK(o.iterations >= 0);
  PERTURB_CHECK(o.distance >= 0);
  PERTURB_CHECK(o.num_threads > 0);
}

/// Hands out iterations under the selected policy.  Self-scheduling is safe
/// for DOACROSS chains: the shared counter dispatches iterations in order,
/// and every fetched iteration runs to completion (including its advance)
/// before its thread fetches again, so an await's producer iteration is
/// always already dispatched.
class IterationSource {
 public:
  IterationSource(const DoacrossOptions& o) : o_(o) {}

  /// Next iteration for `tid`, or -1 when exhausted.
  std::int64_t next(std::uint32_t tid, std::int64_t& local_cursor) {
    if (o_.schedule == RtSchedule::kCyclic) {
      const std::int64_t i =
          local_cursor < 0
              ? static_cast<std::int64_t>(tid)
              : local_cursor + static_cast<std::int64_t>(o_.num_threads);
      local_cursor = i;
      return i < o_.iterations ? i : -1;
    }
    const std::int64_t i = shared_.fetch_add(1, std::memory_order_relaxed);
    return i < o_.iterations ? i : -1;
  }

 private:
  const DoacrossOptions& o_;
  std::atomic<std::int64_t> shared_{0};
};

}  // namespace

void run_doacross(const DoacrossBody& body, const DoacrossOptions& o) {
  validate(o);
  if (o.iterations == 0) return;
  SyncVar sync(o.iterations);
  IterationSource source(o);
  const bool synced = o.distance > 0;

  auto worker = [&](std::uint32_t tid) {
    std::int64_t cursor = -1;
    for (std::int64_t i = source.next(tid, cursor); i >= 0;
         i = source.next(tid, cursor)) {
      if (body.pre) body.pre(i);
      if (synced) sync.await(i - o.distance);
      if (body.guarded) body.guarded(i);
      if (synced) sync.advance(i);
      if (body.post) body.post(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(o.num_threads - 1);
  for (std::uint32_t t = 1; t < o.num_threads; ++t)
    threads.emplace_back(worker, t);
  worker(0);
  for (auto& th : threads) th.join();
}

trace::Trace run_doacross_traced(const DoacrossBody& body,
                                 const DoacrossOptions& o,
                                 const std::string& trace_name) {
  validate(o);
  Tracer tracer(o.num_threads);
  SyncVar sync(o.iterations > 0 ? o.iterations : 1);
  SpinBarrier barrier(o.num_threads);
  IterationSource source(o);
  const bool synced = o.distance > 0;
  using S = DoacrossSites;

  tracer.record(0, EventKind::kProgramBegin, 0, 0, 0);
  tracer.record(0, EventKind::kLoopBegin, S::kLoop, S::kLoop, 0);

  auto worker = [&](std::uint32_t tid_u) {
    const auto tid = static_cast<ProcId>(tid_u);
    std::int64_t cursor = -1;
    for (std::int64_t i = source.next(tid_u, cursor); i >= 0;
         i = source.next(tid_u, cursor)) {
      tracer.record(tid, EventKind::kIterBegin, S::kLoop, S::kLoop, i);
      if (body.pre) {
        tracer.record(tid, EventKind::kStmtEnter, S::kPre, 0, i);
        body.pre(i);
        tracer.record(tid, EventKind::kStmtExit, S::kPre, 0, i);
      }
      if (synced && i - o.distance >= 0) {
        tracer.record(tid, EventKind::kAwaitBegin, S::kAwait, S::kSyncVar,
                      i - o.distance);
        sync.await(i - o.distance);
        tracer.record(tid, EventKind::kAwaitEnd, S::kAwait, S::kSyncVar,
                      i - o.distance);
      }
      if (body.guarded) {
        tracer.record(tid, EventKind::kStmtEnter, S::kGuarded, 0, i);
        body.guarded(i);
        tracer.record(tid, EventKind::kStmtExit, S::kGuarded, 0, i);
      }
      if (synced) {
        sync.advance(i);
        tracer.record(tid, EventKind::kAdvance, S::kAdvance, S::kSyncVar, i);
      }
      if (body.post) {
        tracer.record(tid, EventKind::kStmtEnter, S::kPost, 0, i);
        body.post(i);
        tracer.record(tid, EventKind::kStmtExit, S::kPost, 0, i);
      }
      tracer.record(tid, EventKind::kIterEnd, S::kLoop, S::kLoop, i);
    }
    tracer.record(tid, EventKind::kBarrierArrive, S::kLoop, S::kLoop, 0);
    barrier.arrive_and_wait();
    tracer.record(tid, EventKind::kBarrierDepart, S::kLoop, S::kLoop, 0);
  };

  std::vector<std::thread> threads;
  threads.reserve(o.num_threads - 1);
  for (std::uint32_t t = 1; t < o.num_threads; ++t)
    threads.emplace_back(worker, t);
  worker(0);
  for (auto& th : threads) th.join();

  tracer.record(0, EventKind::kLoopEnd, S::kLoop, S::kLoop, 0);
  tracer.record(0, EventKind::kProgramEnd, 0, 0, 0);
  PERTURB_CHECK_MSG(tracer.dropped() == 0, "trace buffer overflow");
  return tracer.harvest(trace_name);
}

}  // namespace perturb::rt
