// Real-threads trace capture.
//
// Per-thread preallocated event buffers (no allocation or locking on the hot
// path) timestamped with steady_clock nanoseconds.  This is the runtime
// counterpart of the paper's software tracer: recording an event here has a
// real, nonzero cost, so traces captured this way are genuinely perturbed —
// and the same perturbation analyses in src/core apply to them.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace perturb::rt {

class Tracer {
 public:
  /// `capacity_per_thread` events are preallocated per thread; recording
  /// beyond capacity drops events (counted, never reallocates mid-run).
  explicit Tracer(std::uint32_t num_threads,
                  std::size_t capacity_per_thread = 1u << 20);

  /// Nanoseconds since tracer construction.
  trace::Tick now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one event on `tid`'s buffer.  Wait-free; callable concurrently
  /// from distinct threads (never from two threads with the same tid).
  void record(trace::ProcId tid, trace::EventKind kind, trace::EventId id,
              trace::ObjectId object, std::int64_t payload) {
    Buffer& b = buffers_[tid];
    if (b.events.size() == b.events.capacity()) {
      ++b.dropped;
      return;
    }
    b.events.push_back({now(), payload, id, object, tid, kind});
  }

  /// Merges all buffers into one time-ordered trace (ticks = nanoseconds,
  /// ticks_per_us = 1000) and clears the buffers.
  trace::Trace harvest(const std::string& name);

  /// Total events dropped due to full buffers since the last harvest.
  std::uint64_t dropped() const;

  std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(buffers_.size());
  }

 private:
  struct alignas(64) Buffer {
    std::vector<trace::Event> events;
    std::uint64_t dropped = 0;
  };
  std::vector<Buffer> buffers_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace perturb::rt
