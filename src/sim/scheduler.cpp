#include "sim/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace perturb::sim {

namespace {

class CyclicScheduler final : public IterationScheduler {
 public:
  CyclicScheduler(std::int64_t trip, std::uint32_t procs, Cycles dispatch)
      : trip_(trip), procs_(procs), dispatch_(dispatch), next_(procs, 0) {}

  std::int64_t next(ProcId proc, Tick now, Tick* ready_time) override {
    PERTURB_CHECK(proc < procs_);
    const std::int64_t iter =
        static_cast<std::int64_t>(proc) +
        next_[proc] * static_cast<std::int64_t>(procs_);
    if (iter >= trip_) return -1;
    ++next_[proc];
    *ready_time = now + dispatch_;
    return iter;
  }

 private:
  std::int64_t trip_;
  std::uint32_t procs_;
  Cycles dispatch_;
  std::vector<std::int64_t> next_;  ///< per-proc local iteration counter
};

class BlockScheduler final : public IterationScheduler {
 public:
  BlockScheduler(std::int64_t trip, std::uint32_t procs, Cycles dispatch)
      : trip_(trip), dispatch_(dispatch) {
    const auto p = static_cast<std::int64_t>(procs);
    chunk_ = (trip + p - 1) / std::max<std::int64_t>(p, 1);
    next_.assign(procs, 0);
    for (std::uint32_t q = 0; q < procs; ++q)
      next_[q] = chunk_ * static_cast<std::int64_t>(q);
  }

  std::int64_t next(ProcId proc, Tick now, Tick* ready_time) override {
    PERTURB_CHECK(proc < next_.size());
    const std::int64_t hi = std::min(
        trip_, chunk_ * (static_cast<std::int64_t>(proc) + 1));
    if (next_[proc] >= hi) return -1;
    *ready_time = now + dispatch_;
    return next_[proc]++;
  }

 private:
  std::int64_t trip_;
  Cycles dispatch_;
  std::int64_t chunk_ = 0;
  std::vector<std::int64_t> next_;
};

class SelfScheduler final : public IterationScheduler {
 public:
  SelfScheduler(std::int64_t trip, Cycles fetch, Cycles serialize)
      : trip_(trip), fetch_(fetch), serialize_(serialize) {}

  std::int64_t next(ProcId, Tick now, Tick* ready_time) override {
    if (next_ >= trip_) return -1;
    // The shared counter serializes fetches: a fetch issued at `now` is
    // granted no earlier than the counter becomes available again.
    const Tick grant = std::max(now, available_);
    available_ = grant + serialize_;
    *ready_time = grant + fetch_;
    return next_++;
  }

 private:
  std::int64_t trip_;
  Cycles fetch_;
  Cycles serialize_;
  std::int64_t next_ = 0;
  Tick available_ = 0;
};

}  // namespace

std::unique_ptr<IterationScheduler> make_scheduler(Schedule schedule,
                                                   std::int64_t trip,
                                                   std::uint32_t num_procs,
                                                   const MachineConfig& cfg) {
  PERTURB_CHECK(num_procs > 0);
  switch (schedule) {
    case Schedule::kCyclic:
      return std::make_unique<CyclicScheduler>(trip, num_procs,
                                               cfg.iter_dispatch_cost);
    case Schedule::kBlock:
      return std::make_unique<BlockScheduler>(trip, num_procs,
                                              cfg.iter_dispatch_cost);
    case Schedule::kSelf:
      return std::make_unique<SelfScheduler>(trip, cfg.self_sched_fetch_cost,
                                             cfg.self_sched_serialize);
  }
  PERTURB_CHECK_MSG(false, "unknown schedule");
  return nullptr;
}

}  // namespace perturb::sim
