// ReadyQueue: indexed binary min-heap of runnable processors.
//
// The engine's event loop repeatedly runs the queued processor with the
// smallest (action start tick, processor id).  A plain
// std::priority_queue<pair> cannot re-key an entry, so an engine built on it
// either pushes duplicates (and skips stale pops) or re-heapifies.  This
// queue keeps at most one entry per processor, tracked through a
// processor-indexed slot map, so membership tests are O(1) and re-keying a
// waiting processor (decrease-key or delay) is one sift instead of a
// duplicate entry.
//
// Ordering is exactly the (tick, pid) lexicographic minimum the engine has
// always used: equal-tick ties resolve to the lowest processor id, so the
// simulation schedule — and therefore every emitted trace — is unchanged.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "trace/event.hpp"

namespace perturb::sim {

class ReadyQueue {
 public:
  using Tick = trace::Tick;
  using ProcId = trace::ProcId;

  /// Empties the queue and sizes the slot map for processors [0, num_procs).
  void reset(std::size_t num_procs) {
    heap_.clear();
    heap_.reserve(num_procs);
    pos_.assign(num_procs, npos);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  bool contains(ProcId p) const { return pos_[p] != npos; }

  /// Smallest (tick, pid) entry.
  std::pair<Tick, ProcId> top() const {
    PERTURB_CHECK(!heap_.empty());
    return {heap_[0].tick, heap_[0].pid};
  }

  void push(Tick t, ProcId p) {
    PERTURB_CHECK_MSG(pos_[p] == npos, "processor already queued");
    heap_.push_back({t, p});
    sift_up(heap_.size() - 1);
  }

  void pop() {
    PERTURB_CHECK(!heap_.empty());
    pos_[heap_[0].pid] = npos;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      sift_down(0);
    }
  }

  /// Re-keys an already-queued processor; moves it either direction.
  void update(ProcId p, Tick t) {
    const std::size_t i = pos_[p];
    PERTURB_CHECK_MSG(i != npos, "processor not queued");
    const Tick old = heap_[i].tick;
    heap_[i].tick = t;
    if (t < old)
      sift_up(i);
    else
      sift_down(i);
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Entry {
    Tick tick;
    ProcId pid;
  };

  static bool less(const Entry& a, const Entry& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.pid < b.pid;
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].pid] = i;
      i = parent;
    }
    heap_[i] = e;
    pos_[e.pid] = i;
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
      if (!less(heap_[child], e)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].pid] = i;
      i = child;
    }
    heap_[i] = e;
    pos_[e.pid] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;  ///< pid → heap slot, npos when absent
};

}  // namespace perturb::sim
