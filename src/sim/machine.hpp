// Machine model parameters for the simulated multiprocessor.
//
// Defaults are scaled to resemble the Alliant FX/80 computational complex:
// eight computational elements with hardware concurrency control
// (advance/await registers, a concurrency bus for loop dispatch, and
// hardware barriers).  All costs are in cycles (ticks).
#pragma once

#include <cstdint>

#include "sim/ir.hpp"

namespace perturb::sim {

struct MachineConfig {
  std::uint32_t num_procs = 8;

  /// Tick → microsecond conversion recorded in trace metadata.  The FX/80 CE
  /// ran at a 170 ns cycle (~5.9 cycles/us).
  double ticks_per_us = 5.9;

  // --- synchronization operation costs (uninstrumented hardware costs) ---
  Cycles advance_cost = 6;        ///< advance register update
  Cycles await_check_cost = 4;    ///< await test when already satisfied
  Cycles await_resume_cost = 8;   ///< wake-up latency after a blocking await
  Cycles lock_acquire_cost = 6;   ///< uncontended acquire
  Cycles lock_release_cost = 4;
  Cycles sem_acquire_cost = 7;    ///< counting-semaphore P() with permits free
  Cycles sem_release_cost = 5;    ///< counting-semaphore V()
  Cycles barrier_depart_cost = 10;  ///< per-processor barrier exit latency

  // --- loop machinery ---
  Cycles loop_spawn_cost = 40;      ///< master cost to start the complex
  Cycles iter_dispatch_cost = 3;    ///< per-iteration dispatch (static scheds)
  Cycles self_sched_fetch_cost = 6;     ///< shared-counter fetch (self sched)
  Cycles self_sched_serialize = 2;      ///< serialization between fetches
  Cycles seq_loop_iter_cost = 1;        ///< sequential loop bookkeeping
};

}  // namespace perturb::sim
