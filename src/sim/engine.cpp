#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/ready_queue.hpp"
#include "sim/scheduler.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"

namespace perturb::sim {

namespace {

using trace::Event;
using trace::EventKind;
using trace::ProcId;
using trace::Tick;

/// Advance/await payloads are episode * kPairStride + index, so pairs stay
/// unique across repeated executions of the same loop.
constexpr std::int64_t kPairStride = std::int64_t{1} << 32;

/// advanced_flat slot value for "no advance executed for this index yet".
constexpr Tick kNotAdvanced = std::numeric_limits<Tick>::min();

/// Waiter-list size beyond which an advance's waiter lookup switches from
/// the linear scan to the per-pair index.  Waiter counts are bounded by the
/// processor count, so only large simulated machines ever cross this.
constexpr std::size_t kWaiterIndexThreshold = 32;

/// queued_clock_ sentinel for "processor not runnable".
constexpr Tick kIdleClock = std::numeric_limits<Tick>::max();

struct Frame {
  enum class Kind : std::uint8_t {
    kBlock,       ///< executing a block of nodes
    kSeqLoop,     ///< sequential loop control
    kCritical,    ///< lock acquire / body / release
    kSemaphore,   ///< semaphore P() / body / V()
    kAwaitCheck,  ///< the satisfaction test of an await (pop = read time)
    kParWorker,   ///< parallel-loop worker: dispatch / iteration end
  };
  Kind kind;
  const Block* block = nullptr;  ///< kBlock
  std::size_t pc = 0;            ///< kBlock
  const Node* node = nullptr;    ///< all other kinds
  std::int64_t iter = 0;  ///< kSeqLoop: next iter; kParWorker: current iter;
                          ///< kAwaitCheck: pair index
  int phase = 0;          ///< kCritical / kParWorker state
};

/// One event as recorded into a per-processor arena: the event plus its
/// global emission ordinal, which is the tie-break that reproduces the
/// reference engine's append order among equal timestamps.
struct Pending {
  Event e;
  std::uint64_t seq;
};

struct Proc {
  ProcId id = 0;
  Tick clock = 0;
  std::vector<Frame> stack;
  std::vector<Pending> arena;  ///< fast path: this processor's events
  std::uint64_t events_recorded = 0;
  bool queued = false;
  std::int64_t par_iter = -1;  ///< current parallel-loop iteration, -1 outside
};

/// FIFO of blocked processors.  A vector plus a head cursor instead of a
/// std::deque: waiter lists are short and churn every critical section, and
/// this layout reuses one flat allocation for the lifetime of the run.
class WaitList {
 public:
  bool empty() const noexcept { return head_ == q_.size(); }
  void push_back(ProcId p) { q_.push_back(p); }
  ProcId front() const { return q_[head_]; }
  void pop_front() {
    if (++head_ == q_.size()) {
      q_.clear();
      head_ = 0;
    }
  }

 private:
  std::vector<ProcId> q_;
  std::size_t head_ = 0;
};

struct VarState {
  // Reference path: pair → visibility time.
  std::unordered_map<std::int64_t, Tick> advanced;
  // Fast path: the active episode's advances as a flat index-keyed table
  // (re-assigned per loop execution), plus a rare overflow map for advance
  // indices beyond the loop's trip count (dead advances nobody can await).
  std::vector<Tick> advanced_flat;
  std::unordered_map<std::int64_t, Tick> advanced_over;
  /// Blocked awaiters as flat (pair, proc) entries in block order; an
  /// advance wakes its pair's entries front-to-back, which preserves the
  /// per-pair FIFO the old map-of-vectors gave.
  std::vector<std::pair<std::int64_t, ProcId>> waiters;
  /// Fast path, large machines: per-pair waiter FIFOs keyed on the awaited
  /// pair, populated once `waiters` outgrows kWaiterIndexThreshold.  In
  /// debug builds `waiters` is kept as a shadow to assert the index wakes
  /// the exact processors, in the exact order, the linear scan would.
  std::unordered_map<std::int64_t, std::vector<ProcId>> waiter_index;
  bool indexed = false;
  std::size_t waiter_count = 0;
};

struct LockState {
  bool held = false;
  Tick free_since = 0;
  WaitList waiters;  ///< FIFO by request (pop) time
};

struct BarrierState {
  std::uint32_t arrived = 0;
  Tick max_arrival = 0;
  std::vector<ProcId> waiters;
};

struct SemState {
  std::int64_t capacity = 0;
  std::vector<Tick> permits;  ///< visibility times of free permits
  WaitList waiters;           ///< FIFO by request (pop) time
};

/// Exact integer count of i in [0, trip) with 0 <= scale*i + offset < trip —
/// the iterations whose await is dependence-carrying (emits awaitB/awaitE).
std::int64_t count_awaitable(const IndexExpr& ix, std::int64_t trip) {
  if (trip <= 0) return 0;
  if (ix.scale == 0)
    return (ix.offset >= 0 && ix.offset < trip) ? trip : 0;
  const auto ceil_div = [](std::int64_t a, std::int64_t b) {  // b > 0
    return a >= 0 ? (a + b - 1) / b : -((-a) / b);
  };
  const auto floor_div = [](std::int64_t a, std::int64_t b) {  // b > 0
    return a >= 0 ? a / b : -(((-a) + b - 1) / b);
  };
  std::int64_t lo, hi;
  if (ix.scale > 0) {
    lo = ceil_div(-ix.offset, ix.scale);
    hi = floor_div(trip - 1 - ix.offset, ix.scale);
  } else {
    const std::int64_t s = -ix.scale;
    // 0 <= -s*i + offset < trip  ⇔  offset - (trip-1) <= s*i <= offset
    lo = ceil_div(ix.offset - (trip - 1), s);
    hi = floor_div(ix.offset, s);
  }
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min<std::int64_t>(hi, trip - 1);
  return hi >= lo ? hi - lo + 1 : 0;
}

/// Exact number of events a run of `prog` under `hook` records, folded from
/// the IR's trip counts; lets the fast path reserve its arenas up front and
/// the final trace exactly.  `HookT` is the sealed hook type, so the
/// records() queries here are the same direct calls the run loop makes.
template <typename HookT>
class EventCounter {
 public:
  EventCounter(const MachineConfig& cfg, const HookT& hook)
      : cfg_(cfg), hook_(hook) {}

  std::uint64_t count(const Program& prog) const {
    std::uint64_t total = rec(EventKind::kProgramBegin, 0) +
                          rec(EventKind::kProgramEnd, 0);
    total += block(prog.root(), 1, nullptr);
    return total;
  }

 private:
  std::uint64_t rec(EventKind kind, trace::EventId id) const {
    return hook_.records(kind, id) ? 1u : 0u;
  }

  std::uint64_t block(const Block& b, std::uint64_t execs,
                      const Node* par) const {
    std::uint64_t total = 0;
    for (const auto& n : b.nodes) total += node(*n, execs, par);
    return total;
  }

  std::uint64_t node(const Node& n, std::uint64_t execs,
                     const Node* par) const {
    switch (n.kind) {
      case NodeKind::kCompute:
        if (!n.traced) return 0;
        return execs * (rec(EventKind::kStmtEnter, n.id) +
                        rec(EventKind::kStmtExit, n.id));
      case NodeKind::kSeqLoop:
        return block(n.body, execs * static_cast<std::uint64_t>(n.trip), par);
      case NodeKind::kParLoop: {
        const auto trip = static_cast<std::uint64_t>(n.trip);
        std::uint64_t per_exec =
            rec(EventKind::kLoopBegin, n.id) + rec(EventKind::kLoopEnd, n.id) +
            trip * (rec(EventKind::kIterBegin, n.id) +
                    rec(EventKind::kIterEnd, n.id)) +
            cfg_.num_procs * (rec(EventKind::kBarrierArrive, n.id) +
                              rec(EventKind::kBarrierDepart, n.id));
        return execs * per_exec + block(n.body, execs * trip, &n);
      }
      case NodeKind::kCritical:
        return execs * (rec(EventKind::kLockAcquire, n.id) +
                        rec(EventKind::kLockRelease, n.id)) +
               block(n.body, execs, par);
      case NodeKind::kSemRegion:
        return execs * (rec(EventKind::kSemAcquire, n.id) +
                        rec(EventKind::kSemRelease, n.id)) +
               block(n.body, execs, par);
      case NodeKind::kAdvance:
        return execs * rec(EventKind::kAdvance, n.id);
      case NodeKind::kAwait: {
        PERTURB_CHECK_MSG(par != nullptr, "await outside parallel loop");
        // execs is a multiple of the governing trip; scale by the number of
        // iterations whose await index lands inside [0, trip).
        const std::uint64_t sat =
            static_cast<std::uint64_t>(count_awaitable(n.index, par->trip));
        const std::uint64_t per_iter_execs =
            par->trip > 0 ? execs / static_cast<std::uint64_t>(par->trip) : 0;
        return per_iter_execs * sat *
               (rec(EventKind::kAwaitBegin, n.id) +
                rec(EventKind::kAwaitEnd, n.id));
      }
    }
    return 0;
  }

  const MachineConfig& cfg_;
  const HookT& hook_;
};

/// The discrete-event engine, templated on the hook's concrete type and on
/// the execution strategy.
///
/// `HookT` seals per-event dispatch: for NullInstrumentation and
/// CostTableHook (both `final`), records()/probe_cost() compile to direct,
/// inlinable calls; `HookT = InstrumentationHook` is the retained virtual
/// fallback for out-of-tree hooks.
///
/// `kFastPath` selects between:
///  - the fast engine: per-processor append-only event arenas merged once at
///    finalize by (time, emission ordinal), a run-ahead scheduler that keeps
///    stepping the current processor while it remains the global (tick, pid)
///    minimum instead of cycling it through the ready heap, flat
///    index-keyed advance tables, and the indexed waiter lookup;
///  - the reference engine (`kFastPath = false`): the pre-optimization
///    implementation — single shared trace vector restored to time order by
///    a stable sort, every action through the heap, hash-map advance state,
///    linear waiter scans.  Retained as the equivalence baseline for tests
///    and bench/bench_sim; both strategies produce byte-identical traces.
template <typename HookT, bool kFastPath>
class Engine {
 public:
  Engine(const MachineConfig& cfg, const Program& prog, const HookT& hook,
         const std::string& run_name)
      : cfg_(cfg), prog_(prog), hook_(hook) {
    PERTURB_CHECK_MSG(prog.finalized(), "program must be finalized");
    PERTURB_CHECK(cfg.num_procs > 0);
    trace::TraceInfo info;
    info.name = run_name;
    info.num_procs = cfg.num_procs;
    info.ticks_per_us = cfg.ticks_per_us;
    trace_ = trace::Trace(info);
    procs_.resize(cfg.num_procs);
    if constexpr (kFastPath) {
      expected_events_ = EventCounter<HookT>(cfg, hook).count(prog);
    }
    for (std::uint32_t q = 0; q < cfg.num_procs; ++q) {
      procs_[q].id = static_cast<ProcId>(q);
      procs_[q].stack.reserve(16);  // typical nesting; avoids regrow churn
      if constexpr (kFastPath) {
        // Exact total split evenly; imbalanced schedules regrow amortized.
        procs_[q].arena.reserve(expected_events_ / cfg.num_procs + 8);
      }
    }
    if constexpr (kFastPath) {
      queued_clock_.assign(cfg.num_procs, kIdleClock);
    } else {
      ready_.reset(cfg.num_procs);
    }
    vars_.resize(prog.num_sync_vars() + 1);
    locks_.resize(prog.num_locks() + 1);
    sems_.resize(prog.num_semaphores() + 1);
    for (std::uint32_t sid = 1; sid <= prog.num_semaphores(); ++sid) {
      sems_[sid].capacity = prog.semaphore_capacity(sid);
      sems_[sid].permits.assign(
          static_cast<std::size_t>(sems_[sid].capacity), 0);
    }
  }

  trace::Trace run() {
    Proc& master = procs_[0];
    emit(master, EventKind::kProgramBegin, 0, 0, 0);
    master.stack.push_back(
        {Frame::Kind::kBlock, &prog_.root(), 0, nullptr, 0, 0});
    enqueue(master);

    if constexpr (kFastPath) {
      run_fast();
    } else {
      while (!ready_.empty()) {
        const auto [t, pid] = ready_.top();
        ready_.pop();
        Proc& p = procs_[pid];
        PERTURB_CHECK(p.queued);
        PERTURB_CHECK_MSG(t == p.clock, "stale heap entry");
        p.queued = false;
        if (metrics_on_) --runnable_;
        step(p);
      }
    }
    check_quiescent();
    if constexpr (kFastPath) {
      merge_arenas();
    } else {
      // Events were appended in action-processing order (nondecreasing
      // action start times), but an action may emit events later than a
      // subsequently processed action's events.  The stable sort restores
      // global time order while keeping the happened-before-consistent
      // order among ties.
      trace_.sort_canonical();
    }
    if (metrics_on_) flush_metrics();
    return std::move(trace_);
  }

 private:
  // ---- fast run loop ---------------------------------------------------

  /// The fast path selects the next action by scanning a compact per-proc
  /// clock array instead of maintaining a binary heap: with the machine
  /// sizes the paper's experiments use (<= 16 processors) the whole array is
  /// one or two cache lines, so an O(P) argmin beats heap sift bookkeeping —
  /// and enqueue/dequeue become single stores.  Strict less with ascending
  /// scan order reproduces the heap's (tick, pid) lexicographic minimum.
  void run_fast() {
    for (;;) {
      Tick best = kIdleClock;
      std::size_t pid = queued_clock_.size();
      for (std::size_t q = 0; q < queued_clock_.size(); ++q) {
        if (queued_clock_[q] < best) {
          best = queued_clock_[q];
          pid = q;
        }
      }
      if (pid == queued_clock_.size()) break;
      Proc& p = procs_[pid];
      PERTURB_DCHECK(p.queued && p.clock == best);
      queued_clock_[pid] = kIdleClock;
      p.queued = false;
      if (metrics_on_) --runnable_;
      step(p);
    }
  }

  /// Merges the per-processor arenas into one (time, emission ordinal)
  /// ordered trace — exactly the order the reference engine's stable sort
  /// produces.  Arenas are individually sorted (per-processor clocks are
  /// nondecreasing and ordinals increase per emission), so a k-way merge
  /// suffices; a winner tree over the cursors keeps it to ceil(log2 P) key
  /// comparisons per event, which beats both a rescan per event and the
  /// reference path's O(n log n) stable sort.
  void merge_arenas() {
    std::size_t total = 0;
    for (const auto& q : procs_) total += q.arena.size();
    PERTURB_DCHECK(total == expected_events_);
    std::vector<Event>& out = trace_.events();
    out.resize(total);
    Event* dst = out.data();

    const std::size_t num = procs_.size();
    if (num == 1) {
      for (const Pending& pe : procs_[0].arena) *dst++ = pe.e;
      return;
    }
    // Merge keys are (time, seq) packed into one 128-bit integer so the
    // winner selection compiles to compare + conditional moves instead of
    // data-dependent branches — which way a cross-processor time comparison
    // goes is a coin flip, and mispredicts would dominate the merge.
    __extension__ typedef unsigned __int128 Key;  // NOLINT: cmov-friendly key
    const auto key_of = [](const Pending& pe) {
      return (static_cast<Key>(static_cast<std::uint64_t>(pe.e.time)) << 64) |
             pe.seq;
    };
    // Exhausted cursors park on a maximal-key sentinel and simply keep
    // losing; termination is by count.  Leaves are padded to a power of two
    // with pre-exhausted dummies.
    static constexpr Pending kExhausted{
        {std::numeric_limits<Tick>::max(), 0, 0, 0, 0, EventKind::kUser},
        std::numeric_limits<std::uint64_t>::max()};
    std::size_t leaves = 1;
    while (leaves < num) leaves <<= 1;
    std::vector<const Pending*> head(leaves, &kExhausted);
    std::vector<const Pending*> end(leaves, nullptr);
    std::vector<Key> key(leaves, key_of(kExhausted));
    for (std::size_t q = 0; q < num; ++q) {
      if (procs_[q].arena.empty()) continue;
      head[q] = procs_[q].arena.data();
      end[q] = head[q] + procs_[q].arena.size();
      key[q] = key_of(*head[q]);
    }
    // tree[i] = cursor winning the subtree rooted at i; leaves at
    // tree[leaves + q] = q.
    std::vector<std::uint32_t> tree(2 * leaves);
    for (std::size_t q = 0; q < leaves; ++q)
      tree[leaves + q] = static_cast<std::uint32_t>(q);
    for (std::size_t i = leaves - 1; i >= 1; --i) {
      const std::uint32_t x = tree[2 * i], y = tree[2 * i + 1];
      tree[i] = key[x] < key[y] ? x : y;
    }
    for (std::size_t n = 0; n < total; ++n) {
      const std::uint32_t w = tree[1];
      *dst++ = head[w]->e;
      if (++head[w] == end[w]) head[w] = &kExhausted;
      key[w] = key_of(*head[w]);
      // Replay the winner's path to the root.
      for (std::size_t i = (leaves + w) >> 1; i >= 1; i >>= 1) {
        const std::uint32_t x = tree[2 * i], y = tree[2 * i + 1];
        tree[i] = key[x] < key[y] ? x : y;
      }
    }
  }

  // ---- event emission -------------------------------------------------

  void emit(Proc& p, EventKind kind, trace::EventId id, trace::ObjectId object,
            std::int64_t payload) {
    if (!hook_.records(kind, id)) return;
    const Cycles probe = hook_.probe_cost(kind, id, p.id, p.events_recorded);
    PERTURB_CHECK_MSG(probe >= 0, "negative probe cost");
    p.clock += probe;
    Event e;
    e.time = p.clock;
    e.payload = payload;
    e.id = id;
    e.object = object;
    e.proc = p.id;
    e.kind = kind;
    if constexpr (kFastPath) {
      PERTURB_DCHECK(p.arena.empty() || p.arena.back().e.time <= e.time);
      p.arena.push_back({e, seq_++});
    } else {
      trace_.append(e);
    }
    ++p.events_recorded;
  }

  void enqueue(Proc& p) {
    PERTURB_CHECK(!p.queued);
    p.queued = true;
    if (metrics_on_) {
      ++runnable_;
      runnable_peak_ = std::max(runnable_peak_, runnable_);
    }
    if constexpr (kFastPath) {
      queued_clock_[p.id] = p.clock;
    } else {
      ready_.push(p.clock, p.id);
    }
  }

  // ---- stepping --------------------------------------------------------

  void step(Proc& p) {
    PERTURB_CHECK(!p.stack.empty());
    Frame& f = p.stack.back();
    switch (f.kind) {
      case Frame::Kind::kBlock: {
        if (f.pc == f.block->nodes.size()) {
          p.stack.pop_back();
          after_frame_pop(p);
          return;
        }
        const Node& n = *f.block->nodes[f.pc++];
        exec_node(p, n);
        return;
      }
      case Frame::Kind::kSeqLoop: {
        if (f.iter == f.node->trip) {
          p.stack.pop_back();
          after_frame_pop(p);
          return;
        }
        ++f.iter;
        p.clock += cfg_.seq_loop_iter_cost;
        p.stack.push_back(
            {Frame::Kind::kBlock, &f.node->body, 0, nullptr, 0, 0});
        enqueue(p);
        return;
      }
      case Frame::Kind::kCritical: {
        if (f.phase == 0) {
          request_lock(p, f);
        } else {
          release_lock(p, f);
        }
        return;
      }
      case Frame::Kind::kSemaphore: {
        if (f.phase == 0) {
          request_semaphore(p, f);
        } else {
          release_semaphore(p, f);
        }
        return;
      }
      case Frame::Kind::kAwaitCheck: {
        await_check(p, f);
        return;
      }
      case Frame::Kind::kParWorker: {
        if (f.phase == 1) {
          // Finish the iteration, then re-enqueue so the next dispatch's
          // shared-counter read happens at its own pop time.
          emit(p, EventKind::kIterEnd, f.node->id, f.node->id, f.iter);
          f.phase = 0;
          enqueue(p);
          return;
        }
        dispatch_iteration(p, f);
        return;
      }
    }
  }

  void after_frame_pop(Proc& p) {
    if (p.stack.empty()) {
      // Only the master's sequential flow can drain its stack this way;
      // workers are popped by the barrier release.
      PERTURB_CHECK_MSG(p.id == 0, "non-master processor ran out of work");
      emit(p, EventKind::kProgramEnd, 0, 0, 0);
      return;  // idle: not re-enqueued
    }
    enqueue(p);
  }

  void exec_node(Proc& p, const Node& n) {
    switch (n.kind) {
      case NodeKind::kCompute: {
        const std::int64_t payload = p.par_iter >= 0 ? p.par_iter : 0;
        if (n.traced) emit(p, EventKind::kStmtEnter, n.id, 0, payload);
        const Cycles cost =
            n.cost_fn ? n.cost_fn(iteration_context(p)) : n.cost;
        PERTURB_CHECK_MSG(cost >= 0, "negative computed statement cost");
        p.clock += cost;
        if (n.traced) emit(p, EventKind::kStmtExit, n.id, 0, payload);
        enqueue(p);
        return;
      }
      case NodeKind::kSeqLoop: {
        p.stack.push_back({Frame::Kind::kSeqLoop, nullptr, 0, &n, 0, 0});
        enqueue(p);
        return;
      }
      case NodeKind::kParLoop: {
        start_par_loop(p, n);
        return;
      }
      case NodeKind::kCritical: {
        p.stack.push_back({Frame::Kind::kCritical, nullptr, 0, &n, 0, 0});
        enqueue(p);
        return;
      }
      case NodeKind::kSemRegion: {
        p.stack.push_back({Frame::Kind::kSemaphore, nullptr, 0, &n, 0, 0});
        enqueue(p);
        return;
      }
      case NodeKind::kAdvance: {
        do_advance(p, n);
        return;
      }
      case NodeKind::kAwait: {
        do_await(p, n);
        return;
      }
    }
  }

  /// Iteration index a per-iteration cost function is evaluated with: the
  /// parallel-loop iteration when inside one, else the innermost sequential
  /// loop's current iteration, else 0.
  static std::int64_t iteration_context(const Proc& p) {
    if (p.par_iter >= 0) return p.par_iter;
    for (auto it = p.stack.rbegin(); it != p.stack.rend(); ++it)
      if (it->kind == Frame::Kind::kSeqLoop) return it->iter - 1;
    return 0;
  }

  // ---- advance / await -------------------------------------------------

  std::int64_t pair_index(std::int64_t idx) const {
    return par_episode_ * kPairStride + idx;
  }

  /// Fast path: records an advance's visibility, preferring the flat table
  /// for in-range indices.  Returns false on a duplicate.
  bool advance_insert(VarState& v, std::int64_t idx, Tick visibility) {
    if (idx < static_cast<std::int64_t>(v.advanced_flat.size())) {
      if (v.advanced_flat[static_cast<std::size_t>(idx)] != kNotAdvanced)
        return false;
      v.advanced_flat[static_cast<std::size_t>(idx)] = visibility;
      return true;
    }
    // Beyond the trip count: recordable but never awaitable.
    return v.advanced_over.insert({pair_index(idx), visibility}).second;
  }

  void do_advance(Proc& p, const Node& n) {
    PERTURB_CHECK_MSG(par_loop_ != nullptr, "advance outside parallel loop");
    PERTURB_CHECK(p.par_iter >= 0);
    const std::int64_t idx = n.index.eval(p.par_iter);
    PERTURB_CHECK_MSG(idx >= 0 && idx < kPairStride, "advance index range");
    const std::int64_t pair = pair_index(idx);

    p.clock += cfg_.advance_cost;
    const Tick visibility = p.clock;  // visible before the probe runs
    VarState& v = vars_[n.object];
    if constexpr (kFastPath) {
      PERTURB_CHECK_MSG(advance_insert(v, idx, visibility),
                        "duplicate advance of " + n.label);
    } else {
      const bool inserted = v.advanced.insert({pair, visibility}).second;
      PERTURB_CHECK_MSG(inserted, "duplicate advance of " + n.label);
    }

    emit(p, EventKind::kAdvance, n.id, n.object, pair);

    if constexpr (kFastPath) {
      if (v.waiter_count > 0) wake_waiters(v, pair, visibility);
    } else {
      // Wake this pair's blocked awaiters in block order; the stable
      // compaction keeps every other pair's entries in their original FIFO
      // order.
      std::size_t keep = 0;
      for (std::size_t r = 0; r < v.waiters.size(); ++r) {
        if (v.waiters[r].first == pair) {
          wake_awaiter(procs_[v.waiters[r].second], visibility);
        } else {
          v.waiters[keep++] = v.waiters[r];
        }
      }
      v.waiters.resize(keep);
    }
    enqueue(p);
  }

  void do_await(Proc& p, const Node& n) {
    PERTURB_CHECK_MSG(par_loop_ != nullptr, "await outside parallel loop");
    PERTURB_CHECK(p.par_iter >= 0);
    const std::int64_t idx = n.index.eval(p.par_iter);
    if (idx < 0 || idx >= par_loop_->trip) {
      // Dependence-free (e.g. the first d iterations of a distance-d chain):
      // the await is a no-op and generates no events.
      enqueue(p);
      return;
    }
    emit(p, EventKind::kAwaitBegin, n.id, n.object, pair_index(idx));
    p.clock += cfg_.await_check_cost;
    p.stack.push_back(
        {Frame::Kind::kAwaitCheck, nullptr, 0, &n, pair_index(idx), 0});
    enqueue(p);
  }

  void await_check(Proc& p, Frame& f) {
    const Node& n = *f.node;
    const std::int64_t pair = f.iter;
    VarState& v = vars_[n.object];
    Tick visibility = kNotAdvanced;
    if constexpr (kFastPath) {
      // Await indices are < trip (do_await filtered the rest), so only the
      // flat table can hold the partner.
      const auto idx = static_cast<std::size_t>(pair % kPairStride);
      visibility = v.advanced_flat[idx];
    } else {
      const auto it = v.advanced.find(pair);
      if (it != v.advanced.end()) visibility = it->second;
    }
    if (visibility == kNotAdvanced) {
      // Not yet advanced anywhere at or before our clock: block.  The
      // matching advance will wake us (heap order guarantees it has not been
      // processed yet).
      add_waiter(v, pair, p.id);
      return;  // not enqueued
    }
    if (visibility <= p.clock) {
      // Satisfied without waiting.
      p.stack.pop_back();
      emit(p, EventKind::kAwaitEnd, n.id, n.object, pair);
      enqueue(p);
      return;
    }
    // The advance was executed by an earlier-start action but becomes visible
    // in our future: wait for visibility.
    p.clock = visibility + cfg_.await_resume_cost;
    p.stack.pop_back();
    emit(p, EventKind::kAwaitEnd, n.id, n.object, pair);
    enqueue(p);
  }

  void add_waiter(VarState& v, std::int64_t pair, ProcId pid) {
    if constexpr (!kFastPath) {
      v.waiters.emplace_back(pair, pid);
      return;
    }
    ++v.waiter_count;
    if (!v.indexed) {
      v.waiters.emplace_back(pair, pid);
      if (v.waiters.size() > kWaiterIndexThreshold) {
        for (const auto& w : v.waiters)
          v.waiter_index[w.first].push_back(w.second);
        v.indexed = true;
        if (metrics_on_) ++waiter_index_switches_;
#ifdef NDEBUG
        v.waiters.clear();  // debug builds keep the shadow for the assert
#endif
      }
      return;
    }
    v.waiter_index[pair].push_back(pid);
#ifndef NDEBUG
    v.waiters.emplace_back(pair, pid);
#endif
  }

  /// Fast-path wake: linear scan while the list is small, per-pair index
  /// lookup once it crossed the threshold.  Wake order is block order for
  /// the advanced pair either way (asserted against the linear scan in
  /// debug builds).
  void wake_waiters(VarState& v, std::int64_t pair, Tick visibility) {
    if (!v.indexed) {
      std::size_t keep = 0;
      for (std::size_t r = 0; r < v.waiters.size(); ++r) {
        if (v.waiters[r].first == pair) {
          --v.waiter_count;
          wake_awaiter(procs_[v.waiters[r].second], visibility);
        } else {
          v.waiters[keep++] = v.waiters[r];
        }
      }
      v.waiters.resize(keep);
      return;
    }
    const auto it = v.waiter_index.find(pair);
#ifndef NDEBUG
    std::vector<ProcId> linear;
    std::size_t keep = 0;
    for (std::size_t r = 0; r < v.waiters.size(); ++r) {
      if (v.waiters[r].first == pair) {
        linear.push_back(v.waiters[r].second);
      } else {
        v.waiters[keep++] = v.waiters[r];
      }
    }
    v.waiters.resize(keep);
    PERTURB_CHECK_MSG((it == v.waiter_index.end() && linear.empty()) ||
                          (it != v.waiter_index.end() && linear == it->second),
                      "waiter index diverged from linear wake order");
#endif
    if (it == v.waiter_index.end()) return;
    for (const ProcId qid : it->second) wake_awaiter(procs_[qid], visibility);
    v.waiter_count -= it->second.size();
    v.waiter_index.erase(it);
  }

  void wake_awaiter(Proc& q, Tick visibility) {
    PERTURB_CHECK(!q.queued);
    PERTURB_CHECK(!q.stack.empty() &&
                  q.stack.back().kind == Frame::Kind::kAwaitCheck);
    const Frame f = q.stack.back();
    q.stack.pop_back();
    q.clock = std::max(q.clock, visibility) + cfg_.await_resume_cost;
    emit(q, EventKind::kAwaitEnd, f.node->id, f.node->object, f.iter);
    enqueue(q);
  }

  // ---- critical sections ------------------------------------------------

  void request_lock(Proc& p, Frame& f) {
    LockState& l = locks_[f.node->object];
    if (l.held || !l.waiters.empty()) {
      l.waiters.push_back(p.id);  // blocked; granted FIFO on release
      return;
    }
    l.held = true;
    p.clock = std::max(p.clock, l.free_since) + cfg_.lock_acquire_cost;
    enter_critical(p, f);
  }

  void enter_critical(Proc& p, Frame& f) {
    emit(p, EventKind::kLockAcquire, f.node->id, f.node->object,
         p.par_iter >= 0 ? p.par_iter : 0);
    f.phase = 1;
    p.stack.push_back({Frame::Kind::kBlock, &f.node->body, 0, nullptr, 0, 0});
    enqueue(p);
  }

  void release_lock(Proc& p, Frame& f) {
    LockState& l = locks_[f.node->object];
    p.clock += cfg_.lock_release_cost;
    const Tick visibility = p.clock;  // visible before the probe runs
    l.held = false;
    l.free_since = visibility;
    emit(p, EventKind::kLockRelease, f.node->id, f.node->object,
         p.par_iter >= 0 ? p.par_iter : 0);
    p.stack.pop_back();
    enqueue(p);

    if (!l.waiters.empty()) {
      const ProcId qid = l.waiters.front();
      l.waiters.pop_front();
      Proc& q = procs_[qid];
      PERTURB_CHECK(!q.queued && !q.stack.empty());
      Frame& qf = q.stack.back();
      PERTURB_CHECK(qf.kind == Frame::Kind::kCritical && qf.phase == 0);
      l.held = true;
      q.clock = std::max(q.clock, visibility) + cfg_.lock_acquire_cost;
      enter_critical(q, qf);
    }
  }

  // ---- semaphore regions ---------------------------------------------------

  void request_semaphore(Proc& p, Frame& f) {
    SemState& sem = sems_[f.node->object];
    if (!sem.waiters.empty() || sem.permits.empty()) {
      sem.waiters.push_back(p.id);  // blocked; granted FIFO on release
      return;
    }
    // Take the earliest-visible permit.
    const auto best = std::min_element(sem.permits.begin(), sem.permits.end());
    const Tick available = *best;
    sem.permits.erase(best);
    p.clock = std::max(p.clock, available) + cfg_.sem_acquire_cost;
    enter_semaphore(p, f);
  }

  void enter_semaphore(Proc& p, Frame& f) {
    emit(p, EventKind::kSemAcquire, f.node->id, f.node->object,
         p.par_iter >= 0 ? p.par_iter : 0);
    f.phase = 1;
    p.stack.push_back({Frame::Kind::kBlock, &f.node->body, 0, nullptr, 0, 0});
    enqueue(p);
  }

  void release_semaphore(Proc& p, Frame& f) {
    SemState& sem = sems_[f.node->object];
    p.clock += cfg_.sem_release_cost;
    const Tick visibility = p.clock;  // visible before the probe runs
    emit(p, EventKind::kSemRelease, f.node->id, f.node->object,
         p.par_iter >= 0 ? p.par_iter : 0);
    p.stack.pop_back();
    enqueue(p);

    if (!sem.waiters.empty()) {
      const ProcId qid = sem.waiters.front();
      sem.waiters.pop_front();
      Proc& q = procs_[qid];
      PERTURB_CHECK(!q.queued && !q.stack.empty());
      Frame& qf = q.stack.back();
      PERTURB_CHECK(qf.kind == Frame::Kind::kSemaphore && qf.phase == 0);
      q.clock = std::max(q.clock, visibility) + cfg_.sem_acquire_cost;
      enter_semaphore(q, qf);
    } else {
      sem.permits.push_back(visibility);
    }
  }

  // ---- parallel loops ----------------------------------------------------

  void start_par_loop(Proc& p, const Node& n) {
    PERTURB_CHECK_MSG(par_loop_ == nullptr, "nested parallel loop at runtime");
    par_episode_ = loop_episodes_[&n]++;
    par_loop_ = &n;
    par_master_ = p.id;
    emit(p, EventKind::kLoopBegin, n.id, n.id, par_episode_);
    p.clock += cfg_.loop_spawn_cost;

    // Fresh synchronization state per loop execution; nothing may be in
    // flight between parallel loops.
    for (auto& v : vars_) {
      if constexpr (kFastPath) {
        PERTURB_CHECK_MSG(v.waiter_count == 0, "awaiter leaked across loops");
        v.advanced_flat.assign(static_cast<std::size_t>(n.trip), kNotAdvanced);
        v.advanced_over.clear();
      } else {
        PERTURB_CHECK_MSG(v.waiters.empty(), "awaiter leaked across loops");
        v.advanced.clear();
      }
    }
    scheduler_ = make_scheduler(n.schedule, n.trip, cfg_.num_procs, cfg_);
    barrier_.arrived = 0;
    barrier_.max_arrival = 0;
    barrier_.waiters.clear();

    for (auto& q : procs_) {
      if (q.id != p.id) {
        PERTURB_CHECK_MSG(q.stack.empty(), "worker busy at loop start");
        q.clock = std::max(q.clock, p.clock);
      }
      q.stack.push_back({Frame::Kind::kParWorker, nullptr, 0, &n, -1, 0});
      enqueue(q);
    }
  }

  void dispatch_iteration(Proc& p, Frame& f) {
    Tick ready = p.clock;
    const std::int64_t iter = scheduler_->next(p.id, p.clock, &ready);
    if (iter < 0) {
      barrier_arrive(p);
      return;
    }
    PERTURB_CHECK(ready >= p.clock);
    p.clock = ready;
    p.par_iter = iter;
    f.iter = iter;
    f.phase = 1;
    emit(p, EventKind::kIterBegin, f.node->id, f.node->id, iter);
    p.stack.push_back({Frame::Kind::kBlock, &f.node->body, 0, nullptr, 0, 0});
    enqueue(p);
  }

  void barrier_arrive(Proc& p) {
    emit(p, EventKind::kBarrierArrive, par_loop_->id, par_loop_->id,
         par_episode_);
    barrier_.max_arrival = std::max(barrier_.max_arrival, p.clock);
    barrier_.waiters.push_back(p.id);
    if (++barrier_.arrived == cfg_.num_procs) release_barrier();
    // else: blocked, woken by the last arriver
  }

  void release_barrier() {
    const Node& loop = *par_loop_;
    const Tick release = barrier_.max_arrival;
    const std::int64_t episode = par_episode_;
    const ProcId master = par_master_;

    // Clear loop state before re-enqueueing the master, whose continuation
    // may immediately start another parallel loop.
    par_loop_ = nullptr;
    scheduler_.reset();
    barrier_scratch_.clear();
    std::swap(barrier_scratch_, barrier_.waiters);  // buffers ping-pong
    barrier_.arrived = 0;
    barrier_.max_arrival = 0;

    for (const ProcId qid : barrier_scratch_) {
      Proc& q = procs_[qid];
      PERTURB_CHECK(!q.queued);
      PERTURB_CHECK(!q.stack.empty() &&
                    q.stack.back().kind == Frame::Kind::kParWorker);
      q.stack.pop_back();
      q.par_iter = -1;
      q.clock = std::max(q.clock, release) + cfg_.barrier_depart_cost;
      emit(q, EventKind::kBarrierDepart, loop.id, loop.id, episode);
      if (q.id == master)
        emit(q, EventKind::kLoopEnd, loop.id, loop.id, episode);
      if (!q.stack.empty()) enqueue(q);
    }
  }

  // ---- self-observability --------------------------------------------------

  /// One registry write-out per completed run; handles are function-local
  /// statics so nothing registers unless a simulation actually runs with
  /// metrics enabled.
  void flush_metrics() const {
    static const support::Counter runs("sim.runs");
    static const support::Counter events("sim.events");
    static const support::Counter ticks("sim.ticks");
    static const support::Counter switches("sim.waiter_index_switches");
    static const support::Gauge ready_peak("sim.ready_peak");
    runs.add();
    events.add(trace_.size());
    ticks.add(static_cast<std::uint64_t>(trace_.total_time()));
    switches.add(waiter_index_switches_);
    ready_peak.record_max(static_cast<std::int64_t>(runnable_peak_));
  }

  // ---- termination --------------------------------------------------------

  void check_quiescent() const {
    for (const auto& p : procs_) {
      PERTURB_CHECK_MSG(
          p.stack.empty(),
          support::strf("deadlock: processor %u still has %zu frames",
                        unsigned(p.id), p.stack.size()));
    }
    for (const auto& v : vars_) {
      if constexpr (kFastPath) {
        PERTURB_CHECK_MSG(v.waiter_count == 0, "deadlock: awaiter never woken");
      } else {
        PERTURB_CHECK_MSG(v.waiters.empty(), "deadlock: awaiter never woken");
      }
    }
    for (const auto& l : locks_)
      PERTURB_CHECK_MSG(!l.held && l.waiters.empty(),
                        "deadlock: lock held or contended at exit");
    for (const auto& sem : sems_)
      PERTURB_CHECK_MSG(
          sem.waiters.empty() &&
              static_cast<std::int64_t>(sem.permits.size()) == sem.capacity,
          "deadlock: semaphore held or contended at exit");
  }

  const MachineConfig& cfg_;
  const Program& prog_;
  const HookT& hook_;
  trace::Trace trace_;
  std::vector<Proc> procs_;
  std::vector<VarState> vars_;    ///< indexed by sync-var id (0 unused)
  std::vector<LockState> locks_;  ///< indexed by lock id (0 unused)
  std::vector<SemState> sems_;    ///< indexed by semaphore id (0 unused)

  // Min-heap of (action start time, processor); ties resolve by processor id.
  ReadyQueue ready_;

  // Fast-path run-loop state.
  std::uint64_t seq_ = 0;             ///< global emission ordinal
  std::uint64_t expected_events_ = 0; ///< exact IR-folded recorded-event count
  std::vector<Tick> queued_clock_;    ///< per-proc action time, kIdleClock when
                                      ///< not runnable (replaces the heap)

  // Active parallel loop (at most one).
  const Node* par_loop_ = nullptr;
  std::int64_t par_episode_ = 0;
  ProcId par_master_ = 0;
  std::unique_ptr<IterationScheduler> scheduler_;
  BarrierState barrier_;
  std::vector<ProcId> barrier_scratch_;  ///< release_barrier working set
  std::unordered_map<const Node*, std::int64_t> loop_episodes_;

  // Self-observability tallies, flushed once per run (flush_metrics).  The
  // enable flag is cached at construction so the per-enqueue cost is one
  // predictable branch on a member bool; nothing is recorded per event.
  const bool metrics_on_ = support::Metrics::enabled();
  std::uint32_t runnable_ = 0;        ///< processors currently enqueued
  std::uint32_t runnable_peak_ = 0;   ///< ready-queue high-water mark
  std::uint64_t waiter_index_switches_ = 0;
};

}  // namespace

trace::Trace simulate(const MachineConfig& config, const Program& program,
                      const InstrumentationHook& hook,
                      const std::string& run_name) {
  // Seal the two standard hook types so their per-event records()/
  // probe_cost() calls dispatch (and inline) statically; anything else runs
  // the same fast engine through the retained virtual interface.
  if (const auto* null_hook = dynamic_cast<const NullInstrumentation*>(&hook))
    return Engine<NullInstrumentation, true>(config, program, *null_hook,
                                             run_name)
        .run();
  if (const auto* table = dynamic_cast<const CostTableHook*>(&hook))
    return Engine<CostTableHook, true>(config, program, *table, run_name).run();
  return Engine<InstrumentationHook, true>(config, program, hook, run_name)
      .run();
}

trace::Trace simulate_reference(const MachineConfig& config,
                                const Program& program,
                                const InstrumentationHook& hook,
                                const std::string& run_name) {
  return Engine<InstrumentationHook, false>(config, program, hook, run_name)
      .run();
}

trace::Trace simulate_actual(const MachineConfig& config,
                             const Program& program,
                             const std::string& run_name) {
  const NullInstrumentation hook;
  return simulate(config, program, hook, run_name);
}

}  // namespace perturb::sim
