// Discrete-event multiprocessor simulator.
//
// The engine executes an IR program on a simulated machine and produces the
// run's event trace.  Two properties make it the right substrate for
// perturbation experiments:
//
//  1. A run with NullInstrumentation yields the exact logical event trace —
//     the "actual" performance the paper could only measure separately.
//  2. A run with a real instrumentation hook charges probe costs to the
//     processor clocks, so instrumentation perturbs blocking probability,
//     critical-section contention, and (under self-scheduling) the
//     iteration→processor mapping — the phenomena of §3–§4.
//
// Correctness of the event interleaving relies on a conservative DES rule:
// actions are processed in global start-time order, every shared-state read
// happens at the reading action's pop time, and writes carry visibility
// times >= the writer's start time.  Reads compare visibility against the
// reader's clock, so cross-processor races resolve identically to a real
// machine with these costs.
#pragma once

#include <cstdint>
#include <string>

#include "sim/hooks.hpp"
#include "sim/ir.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"

namespace perturb::sim {

/// Simulates `program` (which must be finalized) on `config`'s machine under
/// `hook`'s instrumentation and returns the event trace.  Deterministic:
/// identical inputs produce identical traces.
///
/// Event conventions (relied upon by perturbation analysis):
///  - A recorded event's timestamp is taken *after* its probe cost is
///    charged, so each measured event carries its own overhead.
///  - An advance becomes visible to awaiting processors when the advance
///    operation completes, *before* the advance probe runs.
///  - awaitB is recorded on arrival at the await; the satisfaction test costs
///    `await_check_cost`; a satisfied await records awaitE immediately after,
///    while a blocking await resumes `await_resume_cost` after the advance
///    becomes visible.
///  - await indices outside [0, trip) are dependence-free (first iterations
///    of a distance-d chain) and execute as no-ops without events.
///  - Advance/await event payloads are `episode * 2^32 + index`, unique
///    program-wide; barrier and loop events carry the episode as payload and
///    the loop's site id as object.
trace::Trace simulate(const MachineConfig& config, const Program& program,
                      const InstrumentationHook& hook,
                      const std::string& run_name);

/// Convenience: simulate with NullInstrumentation (the actual execution).
trace::Trace simulate_actual(const MachineConfig& config,
                             const Program& program,
                             const std::string& run_name = "actual");

/// The pre-optimization engine, kept verbatim: virtual hook dispatch on every
/// event, a single shared trace vector restored to time order by a stable
/// sort, every action cycled through the ready heap, and linear waiter scans.
/// Produces traces byte-identical to simulate(); exists as the equivalence
/// baseline for tests and as the reference timing in bench/bench_sim.
trace::Trace simulate_reference(const MachineConfig& config,
                                const Program& program,
                                const InstrumentationHook& hook,
                                const std::string& run_name);

}  // namespace perturb::sim
