// Iteration-to-processor schedulers for parallel loops.
//
// kCyclic mirrors the Alliant hardware dispatch (processor p executes
// iterations p, p+P, ...).  kSelf models dynamic self-scheduling off a shared
// counter: fetch order — and therefore the iteration→processor mapping —
// depends on execution timing, which is exactly the situation where
// instrumentation can remap work across processors and conservative analysis
// needs external scheduling knowledge (§4.2.3, §4.3).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/ir.hpp"
#include "sim/machine.hpp"
#include "trace/event.hpp"

namespace perturb::sim {

using trace::ProcId;
using trace::Tick;

class IterationScheduler {
 public:
  virtual ~IterationScheduler() = default;

  /// Requests the next iteration for `proc` at time `now`.  Returns the
  /// iteration index and sets `*ready_time` (>= now) to when the iteration
  /// body may begin; returns -1 when the processor has no more work.
  virtual std::int64_t next(ProcId proc, Tick now, Tick* ready_time) = 0;
};

/// Creates a scheduler instance for one parallel-loop execution.
std::unique_ptr<IterationScheduler> make_scheduler(Schedule schedule,
                                                   std::int64_t trip,
                                                   std::uint32_t num_procs,
                                                   const MachineConfig& cfg);

}  // namespace perturb::sim
