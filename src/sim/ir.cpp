#include "sim/ir.hpp"

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::sim {

using support::strf;

const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::kCyclic: return "cyclic";
    case Schedule::kBlock: return "block";
    case Schedule::kSelf: return "self";
  }
  return "unknown";
}

const char* loop_kind_name(LoopKind k) noexcept {
  switch (k) {
    case LoopKind::kDoall: return "doall";
    case LoopKind::kDoacross: return "doacross";
  }
  return "unknown";
}

NodePtr compute(std::string label, Cycles cost) {
  PERTURB_CHECK_MSG(cost >= 0, "negative statement cost");
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kCompute;
  n->label = std::move(label);
  n->cost = cost;
  return n;
}

NodePtr compute_fn(std::string label,
                   std::function<Cycles(std::int64_t)> cost_of_iter) {
  PERTURB_CHECK_MSG(cost_of_iter != nullptr, "null cost function");
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kCompute;
  n->label = std::move(label);
  n->cost_fn = std::move(cost_of_iter);
  return n;
}

NodePtr raw_compute(std::string label, Cycles cost) {
  auto n = compute(std::move(label), cost);
  n->traced = false;
  return n;
}

NodePtr seq_loop(std::string label, std::int64_t trip, Block body) {
  PERTURB_CHECK_MSG(trip >= 0, "negative trip count");
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kSeqLoop;
  n->label = std::move(label);
  n->trip = trip;
  n->body = std::move(body);
  return n;
}

NodePtr par_loop(std::string label, LoopKind kind, Schedule sched,
                 std::int64_t trip, Block body) {
  PERTURB_CHECK_MSG(trip >= 0, "negative trip count");
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kParLoop;
  n->label = std::move(label);
  n->loop_kind = kind;
  n->schedule = sched;
  n->trip = trip;
  n->body = std::move(body);
  return n;
}

NodePtr critical(ObjectId lock, Block body) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kCritical;
  n->label = "critical";
  n->object = lock;
  n->body = std::move(body);
  return n;
}

NodePtr semaphore_region(ObjectId semaphore, Block body) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kSemRegion;
  n->label = "semaphore";
  n->object = semaphore;
  n->body = std::move(body);
  return n;
}

NodePtr advance(ObjectId var, IndexExpr index) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kAdvance;
  n->label = "advance";
  n->object = var;
  n->index = index;
  return n;
}

NodePtr await(ObjectId var, IndexExpr index) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kAwait;
  n->label = "await";
  n->object = var;
  n->index = index;
  return n;
}

ObjectId Program::declare_sync_var(std::string name) {
  sync_var_names_.push_back(std::move(name));
  return static_cast<ObjectId>(sync_var_names_.size());  // ids start at 1
}

ObjectId Program::declare_lock(std::string name) {
  lock_names_.push_back(std::move(name));
  return static_cast<ObjectId>(lock_names_.size());  // ids start at 1
}

ObjectId Program::declare_semaphore(std::string name, std::int64_t capacity) {
  PERTURB_CHECK_MSG(capacity >= 1, "semaphore capacity must be >= 1");
  semaphores_.emplace_back(std::move(name), capacity);
  return static_cast<ObjectId>(semaphores_.size());  // ids start at 1
}

const std::string& Program::sync_var_name(ObjectId id) const {
  PERTURB_CHECK(id >= 1 && id <= sync_var_names_.size());
  return sync_var_names_[id - 1];
}

const std::string& Program::lock_name(ObjectId id) const {
  PERTURB_CHECK(id >= 1 && id <= lock_names_.size());
  return lock_names_[id - 1];
}

const std::string& Program::semaphore_name(ObjectId id) const {
  PERTURB_CHECK(id >= 1 && id <= semaphores_.size());
  return semaphores_[id - 1].first;
}

std::int64_t Program::semaphore_capacity(ObjectId id) const {
  PERTURB_CHECK(id >= 1 && id <= semaphores_.size());
  return semaphores_[id - 1].second;
}

void Program::finalize() {
  if (finalized_) return;
  next_site_ = 1;
  assign_ids(root_);
  validate(root_, 0);
  finalized_ = true;
}

void Program::assign_ids(Block& b) {
  for (auto& n : b.nodes) {
    n->id = next_site_++;
    switch (n->kind) {
      case NodeKind::kSeqLoop:
      case NodeKind::kParLoop:
      case NodeKind::kCritical:
      case NodeKind::kSemRegion:
        assign_ids(n->body);
        break;
      default:
        break;
    }
  }
}

void Program::validate(const Block& b, int par_depth) const {
  for (const auto& n : b.nodes) {
    switch (n->kind) {
      case NodeKind::kCompute:
        break;
      case NodeKind::kSeqLoop:
        validate(n->body, par_depth);
        break;
      case NodeKind::kParLoop:
        PERTURB_CHECK_MSG(par_depth == 0, "nested parallel loops unsupported");
        validate(n->body, par_depth + 1);
        break;
      case NodeKind::kCritical:
        PERTURB_CHECK_MSG(par_depth > 0,
                          "critical section outside parallel loop");
        PERTURB_CHECK_MSG(n->object >= 1 && n->object <= lock_names_.size(),
                          "undeclared lock id");
        validate(n->body, par_depth);
        break;
      case NodeKind::kAdvance:
      case NodeKind::kAwait:
        PERTURB_CHECK_MSG(par_depth > 0,
                          "advance/await outside parallel loop");
        PERTURB_CHECK_MSG(n->object >= 1 && n->object <= sync_var_names_.size(),
                          "undeclared sync variable id");
        break;
      case NodeKind::kSemRegion:
        PERTURB_CHECK_MSG(par_depth > 0,
                          "semaphore region outside parallel loop");
        PERTURB_CHECK_MSG(n->object >= 1 && n->object <= semaphores_.size(),
                          "undeclared semaphore id");
        validate(n->body, par_depth);
        break;
    }
  }
}

const Node* Program::find_site(EventId id) const {
  return find_site_in(root_, id);
}

const Node* Program::find_site_in(const Block& b, EventId id) const {
  for (const auto& n : b.nodes) {
    if (n->id == id) return n.get();
    switch (n->kind) {
      case NodeKind::kSeqLoop:
      case NodeKind::kParLoop:
      case NodeKind::kCritical:
      case NodeKind::kSemRegion: {
        const Node* hit = find_site_in(n->body, id);
        if (hit) return hit;
        break;
      }
      default:
        break;
    }
  }
  return nullptr;
}

std::string Program::dump() const {
  std::string out;
  dump_block(root_, 0, out);
  return out;
}

void Program::dump_block(const Block& b, int depth, std::string& out) const {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  for (const auto& n : b.nodes) {
    switch (n->kind) {
      case NodeKind::kCompute:
        out += strf("%s[%u] stmt %-24s cost=%lld\n", indent.c_str(),
                    unsigned(n->id), n->label.c_str(),
                    static_cast<long long>(n->cost));
        break;
      case NodeKind::kSeqLoop:
        out += strf("%s[%u] for %s (trip=%lld)\n", indent.c_str(),
                    unsigned(n->id), n->label.c_str(),
                    static_cast<long long>(n->trip));
        dump_block(n->body, depth + 1, out);
        break;
      case NodeKind::kParLoop:
        out += strf("%s[%u] %s %s (trip=%lld, sched=%s)\n", indent.c_str(),
                    unsigned(n->id), loop_kind_name(n->loop_kind),
                    n->label.c_str(), static_cast<long long>(n->trip),
                    schedule_name(n->schedule));
        dump_block(n->body, depth + 1, out);
        break;
      case NodeKind::kCritical:
        out += strf("%s[%u] critical (%s)\n", indent.c_str(), unsigned(n->id),
                    lock_name(n->object).c_str());
        dump_block(n->body, depth + 1, out);
        break;
      case NodeKind::kSemRegion:
        out += strf("%s[%u] semaphore (%s, capacity=%lld)\n", indent.c_str(),
                    unsigned(n->id), semaphore_name(n->object).c_str(),
                    static_cast<long long>(semaphore_capacity(n->object)));
        dump_block(n->body, depth + 1, out);
        break;
      case NodeKind::kAdvance:
        out += strf("%s[%u] advance(%s, %lld*i%+lld)\n", indent.c_str(),
                    unsigned(n->id), sync_var_name(n->object).c_str(),
                    static_cast<long long>(n->index.scale),
                    static_cast<long long>(n->index.offset));
        break;
      case NodeKind::kAwait:
        out += strf("%s[%u] await(%s, %lld*i%+lld)\n", indent.c_str(),
                    unsigned(n->id), sync_var_name(n->object).c_str(),
                    static_cast<long long>(n->index.scale),
                    static_cast<long long>(n->index.offset));
        break;
    }
  }
}

}  // namespace perturb::sim
