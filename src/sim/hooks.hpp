// Instrumentation hook interface between the simulator and the
// instrumentation layer.
//
// The engine calls the hook at every potential event point.  The hook decides
// whether the event is recorded and what the probe costs; the engine charges
// that cost to the processor clock *before* taking the timestamp, so a
// measured event time includes its own probe overhead — exactly the
// convention the paper's time-based model assumes when it subtracts the
// per-event overhead α (§3, §4.2.3).
//
// A run with NullInstrumentation records every event at zero cost: that trace
// is the logical event trace of §2 — the program's *actual* performance.
#pragma once

#include <cstdint>

#include "sim/ir.hpp"
#include "trace/event.hpp"

namespace perturb::sim {

class InstrumentationHook {
 public:
  virtual ~InstrumentationHook() = default;

  /// True if an event of this kind at this site is recorded into the trace.
  virtual bool records(trace::EventKind kind, trace::EventId id) const = 0;

  /// Probe cost in cycles charged for recording this event.  Called once per
  /// recorded event; `proc_event_index` is the count of events previously
  /// recorded on this processor (lets implementations produce deterministic
  /// per-event jitter).
  virtual Cycles probe_cost(trace::EventKind kind, trace::EventId id,
                            trace::ProcId proc,
                            std::uint64_t proc_event_index) const = 0;
};

/// Zero-perturbation observer: records everything, costs nothing.  Runs with
/// this hook produce the ground-truth ("actual") trace.
class NullInstrumentation final : public InstrumentationHook {
 public:
  bool records(trace::EventKind, trace::EventId) const override { return true; }
  Cycles probe_cost(trace::EventKind, trace::EventId, trace::ProcId,
                    std::uint64_t) const override {
    return 0;
  }
};

}  // namespace perturb::sim
