// Instrumentation hook interface between the simulator and the
// instrumentation layer.
//
// The engine calls the hook at every potential event point.  The hook decides
// whether the event is recorded and what the probe costs; the engine charges
// that cost to the processor clock *before* taking the timestamp, so a
// measured event time includes its own probe overhead — exactly the
// convention the paper's time-based model assumes when it subtracts the
// per-event overhead α (§3, §4.2.3).
//
// A run with NullInstrumentation records every event at zero cost: that trace
// is the logical event trace of §2 — the program's *actual* performance.
//
// Dispatch: the engine's run loop is templated on the hook's concrete type
// (see engine.cpp).  NullInstrumentation and CostTableHook are sealed, so
// their per-event records()/probe_cost() calls compile to direct, inlinable
// code in the fast-path instantiations; hooks outside this header run
// through the retained virtual path.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/ir.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"
#include "trace/event.hpp"

namespace perturb::sim {

class InstrumentationHook {
 public:
  virtual ~InstrumentationHook() = default;

  /// True if an event of this kind at this site is recorded into the trace.
  virtual bool records(trace::EventKind kind, trace::EventId id) const = 0;

  /// Probe cost in cycles charged for recording this event.  Called once per
  /// recorded event; `proc_event_index` is the count of events previously
  /// recorded on this processor (lets implementations produce deterministic
  /// per-event jitter).
  virtual Cycles probe_cost(trace::EventKind kind, trace::EventId id,
                            trace::ProcId proc,
                            std::uint64_t proc_event_index) const = 0;
};

/// Zero-perturbation observer: records everything, costs nothing.  Runs with
/// this hook produce the ground-truth ("actual") trace.
class NullInstrumentation final : public InstrumentationHook {
 public:
  bool records(trace::EventKind, trace::EventId) const override { return true; }
  Cycles probe_cost(trace::EventKind, trace::EventId, trace::ProcId,
                    std::uint64_t) const override {
    return 0;
  }
};

/// Probe cost specification for one event category.
struct ProbeCost {
  double mean = 0.0;         ///< mean probe cost in cycles
  double jitter_frac = 0.0;  ///< uniform jitter amplitude, fraction of mean
};

/// The standard table-driven hook: per-kind record flags and probe costs
/// (mean + deterministic keyed jitter), an optional per-site statement
/// filter, and a kStmtExit toggle.  records() and probe_cost() are `final`
/// so the engine's sealed fast path can dispatch to them statically; the
/// instrumentation layer's presets (instr::InstrumentationPlan) derive from
/// this class and only fill in the tables.
class CostTableHook : public InstrumentationHook {
 public:
  bool records(trace::EventKind kind, trace::EventId id) const final {
    const auto k = static_cast<std::size_t>(kind);
    if (!record_[k]) return false;
    if (kind == trace::EventKind::kStmtExit && !record_stmt_exit_) return false;
    if (site_filter_ && (kind == trace::EventKind::kStmtEnter ||
                         kind == trace::EventKind::kStmtExit)) {
      if (id >= site_filter_->size() || !(*site_filter_)[id]) return false;
    }
    return true;
  }

  Cycles probe_cost(trace::EventKind kind, trace::EventId /*id*/,
                    trace::ProcId proc,
                    std::uint64_t proc_event_index) const final {
    const auto k = static_cast<std::size_t>(kind);
    PERTURB_DCHECK(record_[k]);
    const ProbeCost& c = cost_[k];
    if (c.mean <= 0.0) return 0;
    const double jitter =
        c.jitter_frac == 0.0
            ? 0.0
            : c.mean * c.jitter_frac *
                  support::keyed_jitter(seed_, proc, proc_event_index);
    const auto cycles = static_cast<Cycles>(std::llround(c.mean + jitter));
    return cycles < 0 ? 0 : cycles;
  }

  /// Enables/disables recording of kStmtExit events (the paper records one
  /// event per statement; enter+exit pairs are the richer default).
  void set_record_stmt_exit(bool on) noexcept { record_stmt_exit_ = on; }

  /// Restricts statement probes to sites for which `enabled[id]` is true
  /// (ids beyond the vector are disabled).  Sync/control events unaffected.
  void set_site_filter(std::vector<bool> enabled) {
    site_filter_ = std::move(enabled);
  }

 protected:
  CostTableHook() = default;

  std::array<bool, trace::kNumEventKinds> record_{};
  std::array<ProbeCost, trace::kNumEventKinds> cost_{};
  bool record_stmt_exit_ = true;
  std::optional<std::vector<bool>> site_filter_;
  std::uint64_t seed_ = 0;
};

}  // namespace perturb::sim
