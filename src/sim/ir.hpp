// Program intermediate representation for the machine simulator.
//
// Programs are trees of structured nodes: computation statements with cycle
// costs, sequential loops, parallel loops (DOALL and DOACROSSS per Cytron's
// model, §4.3), critical sections, and advance/await synchronization points
// (§4.2).  The Livermore kernels of the paper's case study are lowered to
// this IR in src/loops with the synchronization structure of Figure 3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace perturb::sim {

using Cycles = std::int64_t;
using trace::EventId;
using trace::ObjectId;

/// Affine function of the governing parallel-loop iteration index:
/// eval(i) = scale*i + offset.  Used by advance/await to name the
/// dependence-distance partner (await(A, i-d) has scale=1, offset=-d).
struct IndexExpr {
  std::int64_t scale = 1;
  std::int64_t offset = 0;

  std::int64_t eval(std::int64_t i) const noexcept { return scale * i + offset; }
};

enum class NodeKind : std::uint8_t {
  kCompute,    ///< a statement with a fixed cycle cost
  kSeqLoop,    ///< sequential loop around a body
  kParLoop,    ///< DOALL or DOACROSS loop over iterations 0..trip-1
  kCritical,   ///< lock-guarded body
  kAdvance,    ///< advance(A, e(i))
  kAwait,      ///< await(A, e(i)); no-op when e(i) < 0 (first iterations)
  kSemRegion,  ///< counting-semaphore-guarded body (P() ... V())
};

enum class LoopKind : std::uint8_t { kDoall, kDoacross };

/// Iteration-to-processor assignment policy for parallel loops.
enum class Schedule : std::uint8_t {
  kCyclic,  ///< proc p runs iterations p, p+P, p+2P, ... (Alliant-style)
  kBlock,   ///< contiguous blocks of ceil(trip/P)
  kSelf,    ///< dynamic self-scheduling off a shared counter
};

const char* schedule_name(Schedule s) noexcept;
const char* loop_kind_name(LoopKind k) noexcept;

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Block {
  std::vector<NodePtr> nodes;
};

struct Node {
  NodeKind kind = NodeKind::kCompute;
  /// Instrumentation-site id; assigned program-wide in pre-order by
  /// Program::finalize().  Statement events carry this id.
  EventId id = 0;
  std::string label;

  Cycles cost = 0;          ///< kCompute: statement cycle cost
  /// kCompute: optional per-iteration cost, evaluated with the governing
  /// parallel-loop iteration (or the sequential-loop iteration when outside
  /// parallel loops; 0 at top level).  Overrides `cost` when set.
  std::function<Cycles(std::int64_t)> cost_fn;
  std::int64_t trip = 0;    ///< loops: iteration count
  LoopKind loop_kind = LoopKind::kDoall;    ///< kParLoop
  Schedule schedule = Schedule::kCyclic;    ///< kParLoop
  ObjectId object = 0;      ///< kCritical: lock id; kAdvance/kAwait: sync var
  IndexExpr index;          ///< kAdvance/kAwait
  Block body;               ///< loops, critical sections
  /// kCompute: when false, the statement is not an instrumentation site and
  /// never produces events (compiler-generated code invisible to
  /// source-level instrumentation — e.g. the scalarized shared-variable
  /// update the Alliant compiler emitted inside the advance/await region,
  /// paper footnote 5).
  bool traced = true;
};

/// Node constructors.  Blocks are built with block(...) or by pushing into
/// Block::nodes directly.
NodePtr compute(std::string label, Cycles cost);
NodePtr compute_fn(std::string label,
                   std::function<Cycles(std::int64_t)> cost_of_iter);
/// A statement that consumes cycles but is not an instrumentation site.
NodePtr raw_compute(std::string label, Cycles cost);
NodePtr seq_loop(std::string label, std::int64_t trip, Block body);
NodePtr par_loop(std::string label, LoopKind kind, Schedule sched,
                 std::int64_t trip, Block body);
NodePtr critical(ObjectId lock, Block body);
/// A body guarded by a counting semaphore: P() on entry, V() on exit.  Up to
/// the semaphore's declared capacity of processors may be inside at once.
NodePtr semaphore_region(ObjectId semaphore, Block body);
NodePtr advance(ObjectId var, IndexExpr index);
NodePtr await(ObjectId var, IndexExpr index);

template <typename... Nodes>
Block block(Nodes... nodes) {
  Block b;
  (b.nodes.push_back(std::move(nodes)), ...);
  return b;
}

/// A finalized program: a root block plus resource declarations.  Call
/// Program::finalize() (done by ProgramBuilder) before simulation; it
/// assigns site ids and validates structural rules:
///  - parallel loops must not nest (the FX/80 ran one concurrent loop at a
///    time; the sequential part runs on processor 0),
///  - advance/await/critical may appear only inside a parallel loop body,
///  - sync-variable and lock ids must be declared.
class Program {
 public:
  Program() = default;

  Block& root() noexcept { return root_; }
  const Block& root() const noexcept { return root_; }

  ObjectId declare_sync_var(std::string name);
  ObjectId declare_lock(std::string name);
  /// Declares a counting semaphore with `capacity` permits (capacity >= 1).
  ObjectId declare_semaphore(std::string name, std::int64_t capacity);

  std::uint32_t num_sync_vars() const noexcept {
    return static_cast<std::uint32_t>(sync_var_names_.size());
  }
  std::uint32_t num_locks() const noexcept {
    return static_cast<std::uint32_t>(lock_names_.size());
  }
  std::uint32_t num_semaphores() const noexcept {
    return static_cast<std::uint32_t>(semaphores_.size());
  }
  const std::string& sync_var_name(ObjectId id) const;
  const std::string& lock_name(ObjectId id) const;
  const std::string& semaphore_name(ObjectId id) const;
  std::int64_t semaphore_capacity(ObjectId id) const;

  /// Assigns site ids (pre-order, starting at 1) and validates; throws
  /// CheckError on structural violations.  Idempotent.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  /// One past the largest assigned site id (ids start at 1); suitable as the
  /// size of id-indexed tables.
  EventId num_sites() const noexcept { return next_site_; }

  /// Returns the node with the given site id, or nullptr.
  const Node* find_site(EventId id) const;

  /// Structural dump used by the Figure 3 bench: one line per node with
  /// indentation, labels, costs, and dependence annotations.
  std::string dump() const;

 private:
  void assign_ids(Block& b);
  void validate(const Block& b, int par_depth) const;
  const Node* find_site_in(const Block& b, EventId id) const;
  void dump_block(const Block& b, int depth, std::string& out) const;

  Block root_;
  std::vector<std::string> sync_var_names_;
  std::vector<std::string> lock_names_;
  std::vector<std::pair<std::string, std::int64_t>> semaphores_;
  EventId next_site_ = 1;
  bool finalized_ = false;
};

}  // namespace perturb::sim
