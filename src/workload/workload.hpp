// Seeded scenario synthesis: workloads beyond the Livermore suite.
//
// The Livermore kernels (src/loops) show where event-based reconstruction
// works — the paper's case study.  This layer generates the programs where
// it breaks down: heavy-tailed per-iteration costs (Pareto/lognormal with a
// controllable tail index), randomized DOACROSS distances and critical-
// section/semaphore densities, irregular multi-phase loop nests, and bursty
// per-processor interference injected through the instrumentation hook.
//
// Seeding discipline: every draw is a pure function of (family, seed) —
// program *structure* comes from one xoshiro256** stream seeded by
// hash(seed, family), per-iteration *costs* from stateless splitmix64 keyed
// on (seed, statement ordinal, iteration).  A (family, seed) pair therefore
// lowers to a bit-identical program at any thread count and in any process,
// which is what lets experiments::run_grid memoize synthesized actual runs
// exactly like Livermore ones (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "loops/programs.hpp"
#include "sim/hooks.hpp"
#include "sim/ir.hpp"

namespace perturb::workload {

/// Workload families, ordered from "Livermore-like" to adversarial.
enum class Family : std::uint8_t {
  kPareto,     ///< Pareto(alpha) per-iteration statement costs
  kLognormal,  ///< lognormal(sigma) per-iteration statement costs
  kContention, ///< dense critical sections and semaphore regions
  kIrregular,  ///< multi-phase nest with varying trips and schedules
  kBursty,     ///< per-processor probe-cost interference bursts
};

const char* family_name(Family f) noexcept;
std::optional<Family> family_from_name(std::string_view name) noexcept;

/// Synthesis knobs.  Defaults are per-family (default_params); every field
/// participates in workload_key(), so two specs differing in any knob never
/// share a memoized actual run.
struct Params {
  std::int64_t trip = 600;   ///< governing loop trip count
  int statements = 5;        ///< statements drawn per loop body
  sim::Schedule schedule = sim::Schedule::kSelf;
  double alpha = 1.4;        ///< Pareto tail index (smaller = heavier tail)
  double sigma = 1.0;        ///< lognormal shape parameter
  double cost_scale = 60.0;  ///< cycle scale of drawn statement costs
  double spread_frac = 0.0;  ///< deterministic uniform per-iteration spread
  std::int64_t max_distance = 3;  ///< DOACROSS distance drawn in [1, max]
  double chain_prob = 0.0;        ///< probability the loop carries a chain
  double critical_density = 0.0;  ///< P(statement is lock-guarded)
  double sem_density = 0.0;       ///< P(statement is semaphore-guarded)
  std::int64_t sem_capacity = 2;  ///< permits of the drawn semaphore
  int phases = 3;                 ///< kIrregular: number of loop phases
  double burst_frac = 0.0;        ///< fraction of probe windows in a burst
  std::int64_t burst_cycles = 0;  ///< extra cycles per probe inside a burst
};

struct WorkloadSpec {
  Family family = Family::kPareto;
  std::uint64_t seed = 1;
  Params params;
};

Params default_params(Family f) noexcept;

/// Parses "<family>:<seed>[:k=v,...]" (the --workload grammar).  Knobs:
/// trip, stmts, sched (cyclic|block|self), alpha, sigma, scale, spread,
/// dist, chain, crit, sem, cap, phases, burst, burstcy.  Returns nullopt
/// and fills *error on malformed input; never clamps silently.
std::optional<WorkloadSpec> parse_workload(const std::string& text,
                                           std::string* error);

/// Canonical descriptor: every field of the spec, formatted losslessly.
/// Incorporated into the grid's actual-run memo key — the contract is that
/// equal keys imply bit-identical synthesized programs.
std::string workload_key(const WorkloadSpec& spec);

/// Short run name, e.g. "wl-pareto-7"; used like "lfk17-con" in trace names.
std::string workload_name(const WorkloadSpec& spec);

/// Statement shape of the governing loop (single-loop families; for
/// kIrregular, the first phase).  Costs are the drawn per-statement *means*,
/// so loops::loop_features over it reports the synthesized shape.
loops::LoopIrSpec synthesize_loop(const WorkloadSpec& spec);

/// Lowers the spec to a finalized program.  Pure function of the spec.
sim::Program make_program(const WorkloadSpec& spec);

/// Capacity map of every semaphore a program declares, in the form
/// core::EventBasedOptions::semaphore_capacity consumes (the analyzer treats
/// capacities as external knowledge, exactly like a real trace consumer).
std::map<sim::ObjectId, std::int64_t> semaphore_capacities(
    const sim::Program& program);

/// True when the spec injects measurement-time interference (the measured
/// run must wrap its instrumentation plan in an InterferenceHook, and the
/// analytic model cannot screen the cell).
bool has_interference(const WorkloadSpec& spec) noexcept;

/// Bursty per-processor interference: forwards to an inner hook and inflates
/// probe costs by burst_cycles inside deterministically-drawn windows of
/// kBurstWindow consecutive events per processor.  Models external load
/// during measurement only — the reconstruction subtracts nominal probe
/// costs and cannot see the inflation, which is precisely the unmodeled-
/// overhead residual of §6.  Dispatches through the engine's retained
/// virtual hook path.
class InterferenceHook final : public sim::InstrumentationHook {
 public:
  static constexpr std::uint64_t kBurstWindow = 64;

  InterferenceHook(const sim::InstrumentationHook& inner,
                   const WorkloadSpec& spec) noexcept;

  bool records(trace::EventKind kind, trace::EventId id) const override;
  sim::Cycles probe_cost(trace::EventKind kind, trace::EventId id,
                         trace::ProcId proc,
                         std::uint64_t proc_event_index) const override;

 private:
  const sim::InstrumentationHook* inner_;
  std::uint64_t seed_;
  double burst_frac_;
  sim::Cycles burst_cycles_;
};

}  // namespace perturb::workload
