#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace perturb::workload {

namespace {

using loops::LoopIrSpec;
using loops::StatementSpec;
using sim::Cycles;
using support::hash_combine;
using support::splitmix64;

// Stream salts: structure draws, per-iteration costs, and interference each
// hash from a disjoint key space so adding draws to one never perturbs the
// others.
constexpr std::uint64_t kStructureSalt = 0x5752u;   // "WR"
constexpr std::uint64_t kCostSalt = 0xC057u;
constexpr std::uint64_t kBurstSalt = 0xB525u;

/// Uniform double in [0, 1) from a single key — the stateless counterpart of
/// Xoshiro256::uniform01, for per-iteration draws that must not depend on
/// evaluation order.
double keyed_u01(std::uint64_t key) noexcept {
  return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

/// Largest single per-iteration cost the tail may draw: heavy tails are the
/// point, but one unbounded draw must not turn a test grid into minutes of
/// simulated time.
constexpr double kMaxDrawnCost = 2.0e6;

Cycles clamp_cost(double c) noexcept {
  if (!(c >= 1.0)) return 1;  // also catches NaN
  if (c > kMaxDrawnCost) return static_cast<Cycles>(kMaxDrawnCost);
  return static_cast<Cycles>(std::llround(c));
}

/// Pareto(alpha) with unit scale via inverse transform; mean alpha/(alpha-1).
double pareto_draw(double u, double alpha) noexcept {
  return std::pow(1.0 - u, -1.0 / alpha);
}

/// Standard normal from two independent uniforms (Box–Muller).
double normal_from(double u1, double u2) noexcept {
  const double r = std::sqrt(-2.0 * std::log(std::max(u1, 1e-12)));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Distribution mean multiplier: drawn statement specs carry the *mean* cost
/// so loop_features and the analytic model see the synthesized shape.
double mean_multiplier(const WorkloadSpec& s) noexcept {
  switch (s.family) {
    case Family::kPareto:
      return s.params.alpha / (s.params.alpha - 1.0);
    case Family::kLognormal:
      return std::exp(s.params.sigma * s.params.sigma / 2.0);
    default:
      return 1.0;
  }
}

/// Per-statement guard drawn from the structure stream.
enum class Guard : std::uint8_t { kNone, kCritical, kSemaphore };

/// Everything one loop's lowering needs: the reportable statement shape plus
/// the guard assignment LoopIrSpec cannot express.
struct DrawnLoop {
  LoopIrSpec spec;
  std::vector<Guard> guards;  ///< flattened pre, guarded, post order
  std::vector<double> bases;  ///< per-statement base cost scale (same order)
};

/// Draws one loop's structure from the (seed, family, stream_salt) stream.
/// Pure: same spec and salt → same loop, independent of caller state.
DrawnLoop draw_loop(const WorkloadSpec& s, std::uint64_t stream_salt) {
  const Params& p = s.params;
  support::Xoshiro256 rng(hash_combine(
      hash_combine(s.seed, static_cast<std::uint64_t>(s.family)),
      hash_combine(kStructureSalt, stream_salt)));

  DrawnLoop d;
  d.spec.number = static_cast<int>(
      100 + splitmix64(hash_combine(s.seed, stream_salt)) % 1000000);
  d.spec.name = family_name(s.family);

  const bool chained = rng.uniform01() < p.chain_prob;
  d.spec.distance =
      chained ? 1 + static_cast<std::int64_t>(
                        rng.below(static_cast<std::uint64_t>(p.max_distance)))
              : 0;
  d.spec.parallelizable = d.spec.distance == 0;

  // Chained loops put roughly a quarter of their statements (at least one)
  // into the guarded segment, mirroring the Figure 3 DOACROSS shapes.
  const int guarded_count =
      chained ? std::max(1, p.statements / 4) : 0;
  const int pre_count = std::max(
      chained ? 1 : p.statements, p.statements - guarded_count);

  const double mult = mean_multiplier(s);
  for (int j = 0; j < p.statements; ++j) {
    const double base = p.cost_scale * (0.5 + rng.uniform01());
    StatementSpec stmt;
    stmt.label = support::strf("w%d", j);
    stmt.cost = clamp_cost(base * mult);
    stmt.spread = static_cast<Cycles>(
        std::llround(p.spread_frac * static_cast<double>(stmt.cost)));
    const double g = rng.uniform01();
    Guard guard = Guard::kNone;
    if (g < p.critical_density)
      guard = Guard::kCritical;
    else if (g < p.critical_density + p.sem_density)
      guard = Guard::kSemaphore;
    (j < pre_count ? d.spec.pre : d.spec.guarded).push_back(std::move(stmt));
    d.guards.push_back(guard);
    d.bases.push_back(base);
  }
  return d;
}

/// True when the family replaces plain statement costs with per-iteration
/// distribution draws.
bool tail_family(Family f) noexcept {
  return f == Family::kPareto || f == Family::kLognormal;
}

/// Lowers one drawn statement.  Tail families get a per-iteration cost
/// function keyed on (seed, cost salt, ordinal, iteration) — stateless, so
/// the cost of iteration i is independent of which processor runs it or in
/// what order the engine evaluates it.
sim::NodePtr lower_statement(const WorkloadSpec& s, const DrawnLoop& d,
                             std::size_t ordinal, const StatementSpec& stmt) {
  const std::uint64_t key = hash_combine(
      hash_combine(s.seed, kCostSalt),
      hash_combine(static_cast<std::uint64_t>(d.spec.number), ordinal));
  if (!tail_family(s.family))
    return loops::make_statement(key, stmt);

  const double scale = d.bases[ordinal];
  const double alpha = s.params.alpha;
  const double sigma = s.params.sigma;
  const bool pareto = s.family == Family::kPareto;
  return sim::compute_fn(stmt.label, [key, scale, alpha, sigma,
                                      pareto](std::int64_t i) {
    const auto iter = static_cast<std::uint64_t>(i);
    if (pareto)
      return clamp_cost(scale *
                        pareto_draw(keyed_u01(hash_combine(key, iter)), alpha));
    const double u1 = keyed_u01(hash_combine(key, 2 * iter));
    const double u2 = keyed_u01(hash_combine(key, 2 * iter + 1));
    return clamp_cost(scale * std::exp(sigma * normal_from(u1, u2)));
  });
}

/// Resources a synthesized program may guard statements with; declared only
/// when some statement drew the matching guard.
struct Resources {
  std::optional<sim::ObjectId> lock;
  std::optional<sim::ObjectId> semaphore;
};

sim::NodePtr guard_node(sim::Program& prog, Resources& res, Guard guard,
                        const Params& p, sim::NodePtr node) {
  switch (guard) {
    case Guard::kNone:
      return node;
    case Guard::kCritical:
      if (!res.lock) res.lock = prog.declare_lock("wl-lock");
      return sim::critical(*res.lock, sim::block(std::move(node)));
    case Guard::kSemaphore:
      if (!res.semaphore)
        res.semaphore = prog.declare_semaphore("wl-sem", p.sem_capacity);
      return sim::semaphore_region(*res.semaphore, sim::block(std::move(node)));
  }
  return node;
}

/// Lowers one drawn loop into `prog`'s root as a parallel loop (sequential
/// when the caller asks — irregular nests embed sequential inner loops
/// separately).  `label` names the loop in traces.
void emit_loop(sim::Program& prog, Resources& res, const WorkloadSpec& s,
               const DrawnLoop& d, std::int64_t trip, sim::Schedule schedule,
               const std::string& label) {
  sim::Block body;
  std::size_t ordinal = 0;
  auto emit = [&](const std::vector<StatementSpec>& stmts) {
    for (const StatementSpec& stmt : stmts) {
      body.nodes.push_back(
          guard_node(prog, res, d.guards[ordinal], s.params,
                     lower_statement(s, d, ordinal, stmt)));
      ++ordinal;
    }
  };
  emit(d.spec.pre);
  if (d.spec.distance > 0) {
    const auto var =
        prog.declare_sync_var(support::strf("S%d", d.spec.number));
    body.nodes.push_back(sim::await(var, {1, -d.spec.distance}));
    emit(d.spec.guarded);
    body.nodes.push_back(sim::advance(var, {1, 0}));
  } else {
    emit(d.spec.guarded);
  }
  emit(d.spec.post);
  prog.root().nodes.push_back(sim::par_loop(
      label,
      d.spec.distance > 0 ? sim::LoopKind::kDoacross : sim::LoopKind::kDoall,
      schedule, trip, std::move(body)));
}

sim::Program make_irregular_program(const WorkloadSpec& s) {
  const Params& p = s.params;
  support::Xoshiro256 rng(hash_combine(
      hash_combine(s.seed, static_cast<std::uint64_t>(s.family)),
      hash_combine(kStructureSalt, 0xF00Du)));
  static const sim::Schedule kSchedules[] = {
      sim::Schedule::kSelf, sim::Schedule::kCyclic, sim::Schedule::kBlock};

  sim::Program prog;
  Resources res;
  for (int ph = 0; ph < p.phases; ++ph) {
    // Trip counts vary per phase: [trip/4, trip], drawn from the phase
    // stream so adding phases never reshapes earlier ones.
    const std::int64_t lo = std::max<std::int64_t>(1, p.trip / 4);
    const std::int64_t trip =
        lo + static_cast<std::int64_t>(
                 rng.below(static_cast<std::uint64_t>(p.trip - lo + 1)));
    const sim::Schedule sched = kSchedules[ph % 3];
    DrawnLoop d = draw_loop(s, static_cast<std::uint64_t>(ph) + 1);
    // One phase carries an inner sequential loop: a nest shape no Livermore
    // lowering exercises (seq inside par is legal; par inside par is not).
    // Only when the phase drew no chain — the flattened guard list must stay
    // aligned with the statements, and an unchained loop's last drawn
    // statement is pre.back().
    if (ph == 1 && d.spec.guarded.empty() && !d.spec.pre.empty()) {
      StatementSpec inner = d.spec.pre.back();
      d.spec.pre.pop_back();
      d.guards.pop_back();
      const auto inner_trip =
          static_cast<std::int64_t>(4 + rng.below(12));
      inner.cost = std::max<Cycles>(1, inner.cost / inner_trip);
      emit_loop(prog, res, s, d, trip, sched,
                support::strf("wl-phase%d", ph));
      // Append the inner nest to the phase body just emitted.
      sim::Block inner_body;
      inner_body.nodes.push_back(loops::make_statement(
          hash_combine(s.seed, 0x1E57u + static_cast<std::uint64_t>(ph)),
          inner));
      prog.root().nodes.back()->body.nodes.push_back(sim::seq_loop(
          support::strf("wl-inner%d", ph), inner_trip,
          std::move(inner_body)));
    } else {
      emit_loop(prog, res, s, d, trip, sched,
                support::strf("wl-phase%d", ph));
    }
    // Root-level glue work between phases (runs on processor 0).
    const auto glue_cost =
        clamp_cost(p.cost_scale * (0.5 + rng.uniform01()));
    StatementSpec glue;
    glue.label = support::strf("glue%d", ph);
    glue.cost = glue_cost;
    prog.root().nodes.push_back(loops::make_statement(
        hash_combine(s.seed, 0x61u + static_cast<std::uint64_t>(ph)), glue));
  }
  prog.finalize();
  return prog;
}

}  // namespace

const char* family_name(Family f) noexcept {
  switch (f) {
    case Family::kPareto: return "pareto";
    case Family::kLognormal: return "lognormal";
    case Family::kContention: return "contention";
    case Family::kIrregular: return "irregular";
    case Family::kBursty: return "bursty";
  }
  return "?";
}

std::optional<Family> family_from_name(std::string_view name) noexcept {
  if (name == "pareto") return Family::kPareto;
  if (name == "lognormal") return Family::kLognormal;
  if (name == "contention") return Family::kContention;
  if (name == "irregular") return Family::kIrregular;
  if (name == "bursty") return Family::kBursty;
  return std::nullopt;
}

Params default_params(Family f) noexcept {
  Params p;
  switch (f) {
    case Family::kPareto:
      p.schedule = sim::Schedule::kSelf;
      p.alpha = 1.4;
      p.cost_scale = 60.0;
      p.chain_prob = 0.6;
      break;
    case Family::kLognormal:
      p.schedule = sim::Schedule::kSelf;
      p.sigma = 1.2;
      p.cost_scale = 60.0;
      p.chain_prob = 0.6;
      break;
    case Family::kContention:
      p.schedule = sim::Schedule::kSelf;
      p.trip = 400;
      p.statements = 6;
      p.cost_scale = 150.0;
      p.spread_frac = 0.4;
      p.critical_density = 0.4;
      p.sem_density = 0.2;
      break;
    case Family::kIrregular:
      p.trip = 300;
      p.spread_frac = 0.3;
      p.chain_prob = 0.5;
      p.critical_density = 0.1;
      p.cost_scale = 120.0;
      break;
    case Family::kBursty:
      p.schedule = sim::Schedule::kCyclic;
      p.cost_scale = 400.0;
      p.spread_frac = 0.2;
      p.burst_frac = 0.35;
      p.burst_cycles = 60;
      break;
  }
  return p;
}

std::optional<WorkloadSpec> parse_workload(const std::string& text,
                                           std::string* error) {
  const auto fail = [error](std::string why) -> std::optional<WorkloadSpec> {
    if (error) *error = std::move(why);
    return std::nullopt;
  };
  const std::vector<std::string> parts = support::split(text, ':');
  if (parts.size() < 2 || parts.size() > 3)
    return fail("--workload expects <family>:<seed>[:k=v,...], got '" + text +
                "'");
  const auto family = family_from_name(parts[0]);
  if (!family)
    return fail("unknown workload family '" + parts[0] +
                "' (pareto|lognormal|contention|irregular|bursty)");

  // Strict digits-only seed: a wrapped or partially-parsed seed silently
  // selects a different workload, which defeats reproducibility.
  if (parts[1].empty() || parts[1].size() > 19)
    return fail("bad workload seed '" + parts[1] + "'");
  std::uint64_t seed = 0;
  for (const char c : parts[1]) {
    if (c < '0' || c > '9') return fail("bad workload seed '" + parts[1] + "'");
    seed = seed * 10 + static_cast<std::uint64_t>(c - '0');
  }

  WorkloadSpec spec;
  spec.family = *family;
  spec.seed = seed;
  spec.params = default_params(*family);
  if (parts.size() < 3) return spec;

  Params& p = spec.params;
  for (const std::string& kv : support::split(parts[2], ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size())
      return fail("bad workload parameter '" + kv + "' (expected k=v)");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    const auto as_int = [&](std::int64_t lo,
                            std::int64_t hi) -> std::optional<std::int64_t> {
      if (val.empty() || val.size() > 18) return std::nullopt;
      std::int64_t v = 0;
      for (const char c : val) {
        if (c < '0' || c > '9') return std::nullopt;
        v = v * 10 + (c - '0');
      }
      if (v < lo || v > hi) return std::nullopt;
      return v;
    };
    const auto as_double = [&](double lo, double hi) -> std::optional<double> {
      if (val.empty()) return std::nullopt;
      char* end = nullptr;
      const double v = std::strtod(val.c_str(), &end);
      if (end != val.c_str() + val.size() || !std::isfinite(v)) return
          std::nullopt;
      if (v < lo || v > hi) return std::nullopt;
      return v;
    };
    bool ok = true;
    if (key == "trip") {
      const auto v = as_int(1, 1000000); ok = v.has_value(); if (v) p.trip = *v;
    } else if (key == "stmts") {
      const auto v = as_int(1, 64); ok = v.has_value();
      if (v) p.statements = static_cast<int>(*v);
    } else if (key == "sched") {
      if (val == "cyclic") p.schedule = sim::Schedule::kCyclic;
      else if (val == "block") p.schedule = sim::Schedule::kBlock;
      else if (val == "self") p.schedule = sim::Schedule::kSelf;
      else ok = false;
    } else if (key == "alpha") {
      const auto v = as_double(1.01, 16.0); ok = v.has_value();
      if (v) p.alpha = *v;
    } else if (key == "sigma") {
      const auto v = as_double(0.01, 4.0); ok = v.has_value();
      if (v) p.sigma = *v;
    } else if (key == "scale") {
      const auto v = as_double(1.0, 1.0e6); ok = v.has_value();
      if (v) p.cost_scale = *v;
    } else if (key == "spread") {
      const auto v = as_double(0.0, 1.0); ok = v.has_value();
      if (v) p.spread_frac = *v;
    } else if (key == "dist") {
      const auto v = as_int(1, 16); ok = v.has_value();
      if (v) p.max_distance = *v;
    } else if (key == "chain") {
      const auto v = as_double(0.0, 1.0); ok = v.has_value();
      if (v) p.chain_prob = *v;
    } else if (key == "crit") {
      const auto v = as_double(0.0, 1.0); ok = v.has_value();
      if (v) p.critical_density = *v;
    } else if (key == "sem") {
      const auto v = as_double(0.0, 1.0); ok = v.has_value();
      if (v) p.sem_density = *v;
    } else if (key == "cap") {
      const auto v = as_int(1, 64); ok = v.has_value();
      if (v) p.sem_capacity = *v;
    } else if (key == "phases") {
      const auto v = as_int(1, 8); ok = v.has_value();
      if (v) p.phases = static_cast<int>(*v);
    } else if (key == "burst") {
      const auto v = as_double(0.0, 1.0); ok = v.has_value();
      if (v) p.burst_frac = *v;
    } else if (key == "burstcy") {
      const auto v = as_int(0, 1000000); ok = v.has_value();
      if (v) p.burst_cycles = *v;
    } else {
      return fail("unknown workload parameter '" + key + "'");
    }
    if (!ok)
      return fail("bad value for workload parameter '" + key + "': '" + val +
                  "'");
  }
  if (p.critical_density + p.sem_density > 1.0)
    return fail("crit + sem densities must not exceed 1");
  return spec;
}

std::string workload_key(const WorkloadSpec& s) {
  const Params& p = s.params;
  // %a renders doubles losslessly, so distinct knob values never collide.
  return support::strf(
      "%s|%llu|trip=%lld|stmts=%d|sched=%d|alpha=%a|sigma=%a|scale=%a|"
      "spread=%a|dist=%lld|chain=%a|crit=%a|sem=%a|cap=%lld|phases=%d|"
      "burst=%a|burstcy=%lld",
      family_name(s.family), static_cast<unsigned long long>(s.seed),
      static_cast<long long>(p.trip), p.statements,
      static_cast<int>(p.schedule), p.alpha, p.sigma, p.cost_scale,
      p.spread_frac, static_cast<long long>(p.max_distance), p.chain_prob,
      p.critical_density, p.sem_density,
      static_cast<long long>(p.sem_capacity), p.phases, p.burst_frac,
      static_cast<long long>(p.burst_cycles));
}

std::string workload_name(const WorkloadSpec& s) {
  return support::strf("wl-%s-%llu", family_name(s.family),
                       static_cast<unsigned long long>(s.seed));
}

loops::LoopIrSpec synthesize_loop(const WorkloadSpec& spec) {
  return draw_loop(spec, spec.family == Family::kIrregular ? 1 : 0).spec;
}

sim::Program make_program(const WorkloadSpec& spec) {
  if (spec.family == Family::kIrregular) return make_irregular_program(spec);
  sim::Program prog;
  Resources res;
  const DrawnLoop d = draw_loop(spec, 0);
  emit_loop(prog, res, spec, d, spec.params.trip, spec.params.schedule,
            workload_name(spec));
  prog.finalize();
  return prog;
}

std::map<sim::ObjectId, std::int64_t> semaphore_capacities(
    const sim::Program& program) {
  std::map<sim::ObjectId, std::int64_t> caps;
  // Object ids are 1-based (Program::declare_semaphore).
  for (sim::ObjectId id = 1; id <= program.num_semaphores(); ++id)
    caps[id] = program.semaphore_capacity(id);
  return caps;
}

bool has_interference(const WorkloadSpec& spec) noexcept {
  return spec.params.burst_frac > 0.0 && spec.params.burst_cycles > 0;
}

InterferenceHook::InterferenceHook(const sim::InstrumentationHook& inner,
                                   const WorkloadSpec& spec) noexcept
    : inner_(&inner),
      seed_(hash_combine(spec.seed, kBurstSalt)),
      burst_frac_(spec.params.burst_frac),
      burst_cycles_(spec.params.burst_cycles) {}

bool InterferenceHook::records(trace::EventKind kind,
                               trace::EventId id) const {
  return inner_->records(kind, id);
}

sim::Cycles InterferenceHook::probe_cost(
    trace::EventKind kind, trace::EventId id, trace::ProcId proc,
    std::uint64_t proc_event_index) const {
  Cycles c = inner_->probe_cost(kind, id, proc, proc_event_index);
  // Burst membership is a pure function of (seed, processor, window): the
  // same events land in the same bursts at any thread count.
  const std::uint64_t window = proc_event_index / kBurstWindow;
  const std::uint64_t key =
      hash_combine(hash_combine(seed_, proc), window);
  if (keyed_u01(key) < burst_frac_) c += burst_cycles_;
  return c;
}

}  // namespace perturb::workload
