// TraceIndex: one immutable index of a trace, shared by every analysis.
//
// Each analyzer used to rebuild its own per-processor chains, advance/await
// pairings, lock hand-off order, barrier episodes, and loop spans with
// private std::map scans.  The index is built once per trace — a counting
// sort of the per-processor chains plus one structural scan, then one sort
// per flat synchronization table; the two scans (and the three sorts) can
// run as parallel tasks on a support::TaskPool — and answers the structural
// queries all of them need:
//
//   * per-processor event ranges and previous-event chains,
//   * fork dependencies (a processor's first event inside a parallel-loop
//     episode is caused by the loop's spawn),
//   * advance / awaitB occurrence lists per synchronization key (flat sorted
//     tables, duplicates preserved in trace order),
//   * lock hand-off order (each acquire's preceding release),
//   * counting-semaphore acquire ordinals and release sequences,
//   * barrier episodes (arrivals/departures per (object, episode)),
//   * parallel-loop and iteration marker spans.
//
// The index never interprets times or applies analysis models; it only
// records structure, so conservative, liberal, validation, and post-analysis
// passes can all share it.  It holds a reference to the trace: the trace
// must outlive the index and must not be mutated while indexed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace perturb::support {
class TaskPool;
}  // namespace perturb::support

namespace perturb::trace {

class TraceIndex {
 public:
  /// "No event": returned by every lookup that can miss.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Ascending trace indices of one key's occurrences (a view into the
  /// index's flat sorted tables).
  class IndexRange {
   public:
    IndexRange() = default;
    IndexRange(const std::size_t* b, const std::size_t* e) : b_(b), e_(e) {}
    const std::size_t* begin() const noexcept { return b_; }
    const std::size_t* end() const noexcept { return e_; }
    std::size_t size() const noexcept { return static_cast<std::size_t>(e_ - b_); }
    bool empty() const noexcept { return b_ == e_; }
    std::size_t front() const noexcept { return *b_; }
    std::size_t back() const noexcept { return *(e_ - 1); }

   private:
    const std::size_t* b_ = nullptr;
    const std::size_t* e_ = nullptr;
  };

  /// One parallel-loop episode: LoopBegin event, matching LoopEnd (npos when
  /// the trace is truncated mid-loop), and the spawning processor.
  struct LoopSpan {
    std::size_t begin_index = npos;
    std::size_t end_index = npos;
    ObjectId object = 0;
    ProcId proc = 0;
  };

  /// One iteration marker span (IterBegin .. IterEnd on one processor).
  struct IterSpan {
    std::size_t begin_index = npos;
    std::size_t end_index = npos;  ///< npos when the IterEnd is missing
    std::int64_t iteration = 0;
    ObjectId object = 0;  ///< owning loop object
    ProcId proc = 0;
  };

  /// One barrier episode, keyed by (object, episode payload).
  struct BarrierEpisode {
    SyncKey key;
    std::vector<std::size_t> arrivals;  ///< trace order
    std::vector<std::size_t> departs;   ///< trace order
  };

  /// Tag selecting the original single-pass, map-based builder.  Retained as
  /// an executable specification of the index contents: differential tests
  /// and the hot-path bench baseline compare the optimized builders against
  /// it.
  struct ReferenceBuild {};

  explicit TraceIndex(const Trace& trace);

  /// Builds with the per-processor chain scan and the structural sync-table
  /// scan (then the three flat-table sorts) running as independent tasks on
  /// `pool`.  Bit-identical to the serial build at any pool size.
  TraceIndex(const Trace& trace, support::TaskPool& pool);

  TraceIndex(ReferenceBuild, const Trace& trace);

  const Trace& trace() const noexcept { return *trace_; }
  std::size_t size() const noexcept { return prev_on_proc_.size(); }

  // ---- per-processor structure -----------------------------------------

  /// Number of per-processor event lists (max processor index seen + 1;
  /// may differ from trace().info().num_procs on degraded traces).
  std::size_t num_procs() const noexcept { return proc_events_.size(); }

  /// Trace indices of `proc`'s events, in trace order (empty list for a
  /// processor with no events).
  const std::vector<std::size_t>& events_of(ProcId proc) const;

  /// Same-processor predecessor of event i, npos for a processor's first.
  std::size_t prev_on_proc(std::size_t i) const { return prev_on_proc_[i]; }

  /// The LoopBegin event i depends on when i is a processor's first event
  /// inside a parallel-loop episode (the processor was idle through the
  /// master's sequential section); npos otherwise.
  std::size_t fork_dep(std::size_t i) const {
    return fork_dep_.empty() ? npos : fork_dep_[i];
  }

  // ---- loop / iteration spans ------------------------------------------

  const std::vector<LoopSpan>& loops() const noexcept { return loops_; }
  const std::vector<IterSpan>& iterations() const noexcept { return iters_; }

  // ---- advance / await --------------------------------------------------

  /// All advances for `key`, ascending.  Well-formed traces have at most
  /// one; duplicates (a ViolationKind) are preserved for triage.
  /// Inline: these are the hot-path lookups of every analysis pass.
  IndexRange advances(SyncKey key) const {
    const auto lo =
        std::lower_bound(advance_keys_.begin(), advance_keys_.end(), key);
    const auto hi = std::upper_bound(lo, advance_keys_.end(), key);
    const std::size_t* base = advance_idx_.data();
    return {base + (lo - advance_keys_.begin()),
            base + (hi - advance_keys_.begin())};
  }
  std::size_t first_advance(SyncKey key) const {
    const auto lo =
        std::lower_bound(advance_keys_.begin(), advance_keys_.end(), key);
    if (lo == advance_keys_.end() || !(*lo == key)) return npos;
    return advance_idx_[static_cast<std::size_t>(lo - advance_keys_.begin())];
  }
  std::size_t last_advance(SyncKey key) const {
    const auto hi =
        std::upper_bound(advance_keys_.begin(), advance_keys_.end(), key);
    if (hi == advance_keys_.begin() || !(*(hi - 1) == key)) return npos;
    return advance_idx_[static_cast<std::size_t>(hi - advance_keys_.begin()) -
                        1];
  }
  /// Latest advance for `key` with trace index < i (streaming semantics).
  std::size_t last_advance_before(SyncKey key, std::size_t i) const {
    const IndexRange r = advances(key);
    const auto it = std::lower_bound(r.begin(), r.end(), i);
    return it == r.begin() ? npos : *(it - 1);
  }
  /// Every advance that repeats an earlier advance's key, in trace order.
  const std::vector<std::size_t>& duplicate_advances() const noexcept {
    return duplicate_advances_;
  }

  /// All awaitB events for (key, proc), ascending.
  IndexRange await_begins(SyncKey key, ProcId proc) const;
  std::size_t last_await_begin(SyncKey key, ProcId proc) const;
  std::size_t last_await_begin_before(SyncKey key, ProcId proc,
                                      std::size_t i) const;

  // ---- locks ------------------------------------------------------------

  /// For a LockAcquire event i: the object's latest LockRelease before i
  /// (the hand-off source), npos when the lock was free.  npos for
  /// non-acquire events.
  std::size_t lock_dep(std::size_t i) const {
    return lock_dep_.empty() ? npos : lock_dep_[i];
  }

  // ---- counting semaphores ----------------------------------------------

  /// For a SemAcquire event i: its 0-based per-object acquire ordinal
  /// (the k-th P() on that semaphore in trace order).  npos otherwise.
  std::size_t sem_ordinal(std::size_t i) const {
    return sem_ordinal_.empty() ? npos : sem_ordinal_[i];
  }

  /// SemRelease indices for `object`, in trace order.
  const std::vector<std::size_t>& sem_releases(ObjectId object) const;

  // ---- barriers ----------------------------------------------------------

  /// Episodes sorted by (object, payload) — deterministic iteration order.
  const std::vector<BarrierEpisode>& barrier_episodes() const noexcept {
    return barriers_;
  }
  /// Lookup by (object, episode payload); nullptr when absent.
  const BarrierEpisode* barrier_episode(ObjectId object,
                                        std::int64_t payload) const;

 private:
  /// No-build constructor for the incremental builder; every member is
  /// filled by IncrementalTraceIndex before the index is handed out.
  TraceIndex() : trace_(nullptr) {}
  friend class IncrementalTraceIndex;

  void build(support::TaskPool* pool);
  void build_reference();

  struct AwaitKey {
    SyncKey key;
    ProcId proc = 0;
    friend bool operator==(const AwaitKey&, const AwaitKey&) = default;
    friend bool operator<(const AwaitKey& a, const AwaitKey& b) {
      if (!(a.key == b.key)) return a.key < b.key;
      return a.proc < b.proc;
    }
  };

  /// Shared table finisher: sorts the collected advance/await entries into
  /// the flat key/index arrays, extracts duplicate advances, and orders the
  /// barrier episodes.  Used by build() and by IncrementalTraceIndex::seal()
  /// so both construction paths produce identical tables.
  void finish_tables(std::vector<std::pair<SyncKey, std::size_t>>& advances,
                     std::vector<std::pair<AwaitKey, std::size_t>>& awaits,
                     support::TaskPool* pool);

  const Trace* trace_;
  std::vector<std::size_t> prev_on_proc_;
  std::vector<std::size_t> fork_dep_;
  std::vector<std::size_t> lock_dep_;
  std::vector<std::size_t> sem_ordinal_;
  std::vector<std::vector<std::size_t>> proc_events_;
  std::vector<LoopSpan> loops_;
  std::vector<IterSpan> iters_;

  // Flat sorted tables: parallel (key, trace-index) arrays ordered by key
  // then index, so one key's occurrences form a contiguous ascending slice
  // of the index array.
  std::vector<SyncKey> advance_keys_;
  std::vector<std::size_t> advance_idx_;
  std::vector<AwaitKey> await_keys_;
  std::vector<std::size_t> await_idx_;
  std::vector<std::size_t> duplicate_advances_;

  std::unordered_map<ObjectId, std::vector<std::size_t>> sem_releases_;
  std::vector<BarrierEpisode> barriers_;  ///< sorted by key
  std::unordered_map<SyncKey, std::size_t, SyncKeyHash> barrier_slot_;
};

/// Incremental TraceIndex builder for streaming loads: append events as
/// chunks arrive, then seal() into the immutable index.  Each append runs
/// the same per-event transition as build()'s two scans; seal() runs the
/// same table finishers — so the sealed index is identical (every query
/// answers the same) to a TraceIndex built over the complete trace in one
/// shot, with ReferenceBuild as the common oracle.
class IncrementalTraceIndex {
 public:
  IncrementalTraceIndex() = default;

  void append(const Event& e);
  void append(const Event* events, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) append(events[i]);
  }

  /// Events appended so far.
  std::size_t size() const noexcept { return index_.prev_on_proc_.size(); }

  /// Seals into an index over `trace`, which must hold exactly the appended
  /// events in append order and must outlive the result.  Consumes the
  /// builder.
  TraceIndex seal(const Trace& trace) &&;

 private:
  TraceIndex index_;
  std::vector<std::pair<SyncKey, std::size_t>> advance_entries_;
  std::vector<std::pair<TraceIndex::AwaitKey, std::size_t>> await_entries_;

  // Scan state carried between appends (the locals of build()'s two scans).
  std::vector<std::size_t> last_on_proc_;
  std::unordered_map<ObjectId, std::size_t> last_release_;
  std::unordered_map<ObjectId, std::size_t> sem_acquire_count_;
  std::vector<std::size_t> open_iter_;    // by proc; npos = none open
  std::vector<std::size_t> joined_loop_;  // by proc; loop ordinal + 1
  std::size_t open_loop_ = TraceIndex::npos;
};

}  // namespace perturb::trace
