#include "trace/trace.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace perturb::trace {

void Trace::sort_canonical() {
  // Fast path: simulator- and loader-produced traces are already in
  // (time, append) order, and a stable sort of a sorted sequence is the
  // identity — skip it after one linear scan.
  if (is_time_ordered()) return;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
}

bool Trace::is_time_ordered() const noexcept {
  for (std::size_t i = 1; i < events_.size(); ++i)
    if (events_[i].time < events_[i - 1].time) return false;
  return true;
}

std::vector<std::size_t> Trace::processor_events(ProcId proc) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < events_.size(); ++i)
    if (events_[i].proc == proc) idx.push_back(i);
  return idx;
}

std::vector<std::vector<std::size_t>> Trace::by_processor() const {
  std::vector<std::vector<std::size_t>> out(info_.num_procs);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    PERTURB_CHECK_MSG(e.proc < info_.num_procs, "event processor out of range");
    out[e.proc].push_back(i);
  }
  return out;
}

Tick Trace::start_time() const noexcept {
  if (events_.empty()) return 0;
  Tick t = events_.front().time;
  for (const auto& e : events_) t = std::min(t, e.time);
  return t;
}

Tick Trace::end_time() const noexcept {
  if (events_.empty()) return 0;
  Tick t = events_.front().time;
  for (const auto& e : events_) t = std::max(t, e.time);
  return t;
}

Tick Trace::span() const noexcept { return end_time() - start_time(); }

Tick Trace::total_time() const noexcept {
  Tick begin = 0;
  Tick end = 0;
  bool have_begin = false;
  bool have_end = false;
  for (const auto& e : events_) {
    if (e.kind == EventKind::kProgramBegin && !have_begin) {
      begin = e.time;
      have_begin = true;
    } else if (e.kind == EventKind::kProgramEnd) {
      end = e.time;
      have_end = true;
    }
  }
  if (have_begin && have_end) return end - begin;
  return span();
}

Trace Trace::merge(TraceInfo info, const std::vector<Trace>& parts) {
  // k-way merge keyed by (time, part index) so ties resolve deterministically
  // and per-part order is preserved.
  struct Cursor {
    std::size_t part;
    std::size_t pos;
    Tick time;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.part > b.part;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    PERTURB_CHECK_MSG(parts[p].is_time_ordered(), "merge input not time-ordered");
    if (!parts[p].empty()) heap.push({p, 0, parts[p][0].time});
  }
  Trace out(std::move(info));
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.events_.reserve(total);
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    out.append(parts[c.part][c.pos]);
    const std::size_t next = c.pos + 1;
    if (next < parts[c.part].size())
      heap.push({c.part, next, parts[c.part][next].time});
  }
  return out;
}

}  // namespace perturb::trace
