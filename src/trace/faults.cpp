#include "trace/faults.hpp"

#include <algorithm>

#include "support/prng.hpp"

namespace perturb::trace {

using support::Xoshiro256;

Trace drop_events(const Trace& trace, EventKind kind,
                  std::uint64_t keep_one_in, std::uint64_t seed) {
  Trace out(trace.info());
  Xoshiro256 rng(seed);
  for (const auto& e : trace) {
    if (e.kind == kind && rng.below(keep_one_in) != 0) continue;
    out.append(e);
  }
  return out;
}

Trace drop_random_events(const Trace& trace, double drop_rate,
                         std::uint64_t seed) {
  Trace out(trace.info());
  Xoshiro256 rng(seed);
  for (const auto& e : trace) {
    const bool anchored = e.kind == EventKind::kProgramBegin ||
                          e.kind == EventKind::kProgramEnd;
    if (!anchored && rng.uniform01() < drop_rate) continue;
    out.append(e);
  }
  return out;
}

Trace skew_timestamps(const Trace& trace, Tick max_skew, double rate,
                      std::uint64_t seed) {
  Trace out(trace.info());
  Xoshiro256 rng(seed);
  for (auto e : trace) {
    if (max_skew > 0 && rng.uniform01() < rate)
      e.time -= 1 + static_cast<Tick>(
                        rng.below(static_cast<std::uint64_t>(max_skew)));
    out.append(e);
  }
  return out;
}

Trace truncate_trace(const Trace& trace, double keep_fraction) {
  Trace out(trace.info());
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(trace.size()) *
      std::clamp(keep_fraction, 0.0, 1.0));
  for (std::size_t i = 0; i < keep; ++i) out.append(trace[i]);
  return out;
}

namespace {

Event make_ev(EventKind kind, Tick time, ProcId proc, ObjectId object,
              std::int64_t payload) {
  Event e;
  e.kind = kind;
  e.time = time;
  e.proc = proc;
  e.object = object;
  e.payload = payload;
  return e;
}

}  // namespace

Trace inject_violation(const Trace& trace, ViolationKind kind) {
  Trace out = trace;
  // Appended scenarios live after everything real, on fresh object ids, so
  // the *only* new violations are the requested ones.
  const Tick base = out.end_time() + 1000;
  const ObjectId obj = kFaultObjectBase + static_cast<ObjectId>(kind);
  auto add = [&out](const Event& e) { out.append(e); };
  using K = EventKind;
  switch (kind) {
    case ViolationKind::kNonMonotoneProcessorTime:
      add(make_ev(K::kUser, base + 10000, 0, 0, 0));
      add(make_ev(K::kUser, base + 5000, 0, 0, 0));  // clock ran backwards
      break;
    case ViolationKind::kAwaitEndBeforeAdvance:
      add(make_ev(K::kAdvance, base + 10000, 0, obj, 1));
      add(make_ev(K::kAwaitBegin, base + 1000, 1, obj, 1));
      add(make_ev(K::kAwaitEnd, base + 5000, 1, obj, 1));  // precedes advance
      break;
    case ViolationKind::kAwaitEndWithoutAdvance:
      add(make_ev(K::kAwaitBegin, base + 1000, 1, obj, 1));
      add(make_ev(K::kAwaitEnd, base + 2000, 1, obj, 1));  // advance was lost
      break;
    case ViolationKind::kAwaitEndWithoutBegin:
      add(make_ev(K::kAdvance, base + 1000, 0, obj, 1));
      add(make_ev(K::kAwaitEnd, base + 2000, 1, obj, 1));  // awaitB was lost
      break;
    case ViolationKind::kDuplicateAdvance:
      add(make_ev(K::kAdvance, base + 1000, 0, obj, 1));
      add(make_ev(K::kAdvance, base + 2000, 0, obj, 1));  // retransmission
      break;
    case ViolationKind::kLockOverlap:
      add(make_ev(K::kLockAcquire, base + 1000, 0, obj, 0));
      add(make_ev(K::kLockRelease, base + 3000, 0, obj, 0));
      add(make_ev(K::kLockAcquire, base + 2000, 1, obj, 0));  // inside previous
      add(make_ev(K::kLockRelease, base + 4000, 1, obj, 0));
      break;
    case ViolationKind::kLockUnbalanced:
      add(make_ev(K::kLockAcquire, base + 1000, 0, obj, 0));
      add(make_ev(K::kLockAcquire, base + 2000, 1, obj, 0));  // release lost
      add(make_ev(K::kLockRelease, base + 3000, 1, obj, 0));
      break;
    case ViolationKind::kBarrierOrder:
      add(make_ev(K::kBarrierArrive, base + 1000, 0, obj, 1));
      add(make_ev(K::kBarrierDepart, base + 2000, 0, obj, 1));
      add(make_ev(K::kBarrierArrive, base + 3000, 1, obj, 1));  // after depart
      add(make_ev(K::kBarrierDepart, base + 4000, 1, obj, 1));
      break;
    case ViolationKind::kBarrierIncomplete:
      add(make_ev(K::kBarrierArrive, base + 1000, 0, obj, 1));
      add(make_ev(K::kBarrierArrive, base + 2000, 1, obj, 1));
      add(make_ev(K::kBarrierDepart, base + 3000, 0, obj, 1));  // p1 lost
      break;
    case ViolationKind::kSemaphoreUnbalanced:
      add(make_ev(K::kSemRelease, base + 1000, 0, obj, 0));  // P() was lost
      break;
  }
  return out;
}

void flip_bits(std::string& bytes, std::size_t flips, std::uint64_t seed) {
  if (bytes.empty()) return;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::size_t>(rng.below(bytes.size()));
    const auto bit = static_cast<int>(rng.below(8));
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
  }
}

std::string truncate_bytes(const std::string& bytes, double keep_fraction) {
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * std::clamp(keep_fraction, 0.0, 1.0));
  return bytes.substr(0, keep);
}

}  // namespace perturb::trace
