#include "trace/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneProcessorTime: return "non-monotone-proc-time";
    case ViolationKind::kAwaitEndBeforeAdvance: return "awaitE-before-advance";
    case ViolationKind::kAwaitEndWithoutAdvance: return "awaitE-without-advance";
    case ViolationKind::kAwaitEndWithoutBegin: return "awaitE-without-awaitB";
    case ViolationKind::kDuplicateAdvance: return "duplicate-advance";
    case ViolationKind::kLockOverlap: return "lock-overlap";
    case ViolationKind::kLockUnbalanced: return "lock-unbalanced";
    case ViolationKind::kBarrierOrder: return "barrier-order";
    case ViolationKind::kBarrierIncomplete: return "barrier-incomplete";
    case ViolationKind::kSemaphoreUnbalanced: return "semaphore-unbalanced";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

/// Structural checks over the shared TraceIndex.  Every check walks the
/// trace in order and emits violations in ascending event order, matching
/// the triage order the repair strategies expect.
class Validator {
 public:
  Validator(const TraceIndex& index, const ValidateOptions& options)
      : idx_(index), trace_(index.trace()), slack_(options.sync_slack) {}

  std::vector<Violation> run() {
    check_processor_monotonicity();
    check_advance_await();
    check_locks();
    check_semaphores();
    check_barriers();
    return std::move(violations_);
  }

 private:
  void add(ViolationKind kind, std::size_t index, std::string msg) {
    violations_.push_back({kind, std::move(msg), index});
  }

  void check_processor_monotonicity() {
    // Walk each processor's chain, then report in global trace order.
    std::vector<std::pair<std::size_t, Tick>> found;  // (index, running max)
    for (std::size_t p = 0; p < idx_.num_procs(); ++p) {
      const auto& evs = idx_.events_of(static_cast<ProcId>(p));
      Tick running_max = 0;
      bool started = false;
      for (const std::size_t i : evs) {
        const Tick t = trace_[i].time;
        if (started && t < running_max) found.emplace_back(i, running_max);
        running_max = started ? std::max(running_max, t) : t;
        started = true;
      }
    }
    std::sort(found.begin(), found.end());
    for (const auto& [i, prev_max] : found) {
      add(ViolationKind::kNonMonotoneProcessorTime, i,
          strf("proc %u: time %lld after %lld", unsigned(trace_[i].proc),
               static_cast<long long>(trace_[i].time),
               static_cast<long long>(prev_max)));
    }
  }

  void check_advance_await() {
    // Duplicate advances are a violation wherever they appear; the index
    // preserves them in trace order.
    for (const std::size_t i : idx_.duplicate_advances()) {
      const Event& e = trace_[i];
      add(ViolationKind::kDuplicateAdvance, i,
          strf("advance(%u, %lld) repeated", unsigned(e.object),
               static_cast<long long>(e.payload)));
    }

    // An awaitE is checked against its *first* advance even when the advance
    // appears later in trace order (which is itself the
    // kAwaitEndBeforeAdvance violation).
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind != EventKind::kAwaitEnd) continue;
      const SyncKey key{e.object, e.payload};
      if (idx_.last_await_begin_before(key, e.proc, i) == TraceIndex::npos) {
        add(ViolationKind::kAwaitEndWithoutBegin, i,
            strf("awaitE(%u, %lld) without awaitB on proc %u",
                 unsigned(e.object), static_cast<long long>(e.payload),
                 unsigned(e.proc)));
      }
      const std::size_t adv = idx_.first_advance(key);
      if (adv == TraceIndex::npos) {
        add(ViolationKind::kAwaitEndWithoutAdvance, i,
            strf("awaitE(%u, %lld) with no advance", unsigned(e.object),
                 static_cast<long long>(e.payload)));
      } else if (e.time + slack_ < trace_[adv].time) {
        add(ViolationKind::kAwaitEndBeforeAdvance, i,
            strf("awaitE(%u, %lld) at %lld precedes advance at %lld",
                 unsigned(e.object), static_cast<long long>(e.payload),
                 static_cast<long long>(e.time),
                 static_cast<long long>(trace_[adv].time)));
      }
    }
  }

  void check_locks() {
    // Acquisitions and releases must alternate globally per lock; the
    // hand-off order itself (previous release of each acquire) comes from
    // the index, the held/holder alternation state is a running scan.
    struct LockState {
      bool held = false;
      ProcId holder = 0;
    };
    std::unordered_map<ObjectId, LockState> locks;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kLockAcquire) {
        auto& st = locks[e.object];
        const std::size_t dep = idx_.lock_dep(i);
        if (st.held) {
          add(ViolationKind::kLockUnbalanced, i,
              strf("lock %u acquired by proc %u while held by proc %u",
                   unsigned(e.object), unsigned(e.proc), unsigned(st.holder)));
        } else if (dep != TraceIndex::npos &&
                   e.time + slack_ < trace_[dep].time) {
          add(ViolationKind::kLockOverlap, i,
              strf("lock %u acquired at %lld before previous release at %lld",
                   unsigned(e.object), static_cast<long long>(e.time),
                   static_cast<long long>(trace_[dep].time)));
        }
        st.held = true;
        st.holder = e.proc;
      } else if (e.kind == EventKind::kLockRelease) {
        auto& st = locks[e.object];
        if (!st.held || st.holder != e.proc) {
          add(ViolationKind::kLockUnbalanced, i,
              strf("lock %u released by proc %u without matching acquire",
                   unsigned(e.object), unsigned(e.proc)));
        }
        st.held = false;
      }
    }
    for (const auto& [obj, st] : locks) {
      if (st.held)
        add(ViolationKind::kLockUnbalanced, kNoEvent,
            strf("lock %u never released", unsigned(obj)));
    }
  }

  void check_semaphores() {
    // Capacity is not recorded in the trace, so the checkable rules are
    // per-processor: every V() must release a P() held by the same
    // processor, and no P() may be left held at the end.
    std::map<std::pair<ObjectId, ProcId>, std::int64_t> held;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kSemAcquire) {
        ++held[{e.object, e.proc}];
      } else if (e.kind == EventKind::kSemRelease) {
        auto& h = held[{e.object, e.proc}];
        if (h <= 0) {
          add(ViolationKind::kSemaphoreUnbalanced, i,
              strf("semaphore %u released by proc %u without a held acquire",
                   unsigned(e.object), unsigned(e.proc)));
        } else {
          --h;
        }
      }
    }
    for (const auto& [key, count] : held) {
      if (count > 0)
        add(ViolationKind::kSemaphoreUnbalanced, kNoEvent,
            strf("semaphore %u: proc %u ends holding %lld permit(s)",
                 unsigned(key.first), unsigned(key.second),
                 static_cast<long long>(count)));
    }
  }

  /// Latest arrival time among `episode`'s arrivals before trace index i.
  Tick last_arrive_before(const TraceIndex::BarrierEpisode& episode,
                          std::size_t i) const {
    Tick last = 0;
    for (const std::size_t a : episode.arrivals) {
      if (a >= i) break;  // arrivals are in trace order
      last = std::max(last, trace_[a].time);
    }
    return last;
  }

  void check_barriers() {
    // Events carry payload = episode index.  Within an episode, every arrive
    // must precede every depart, and the counts must match.
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kBarrierArrive) {
        const auto* ep = idx_.barrier_episode(e.object, e.payload);
        if (ep != nullptr && !ep->departs.empty() && ep->departs.front() < i)
          add(ViolationKind::kBarrierOrder, i,
              strf("barrier %u episode %lld: arrive after a depart",
                   unsigned(e.object), static_cast<long long>(e.payload)));
      } else if (e.kind == EventKind::kBarrierDepart) {
        const auto* ep = idx_.barrier_episode(e.object, e.payload);
        const Tick last_arrive =
            ep == nullptr ? 0 : last_arrive_before(*ep, i);
        if (e.time + slack_ < last_arrive)
          add(ViolationKind::kBarrierOrder, i,
              strf("barrier %u episode %lld: depart at %lld before last "
                   "arrive at %lld",
                   unsigned(e.object), static_cast<long long>(e.payload),
                   static_cast<long long>(e.time),
                   static_cast<long long>(last_arrive)));
      }
    }
    for (const auto& ep : idx_.barrier_episodes()) {
      if (ep.arrivals.size() != ep.departs.size())
        add(ViolationKind::kBarrierIncomplete, kNoEvent,
            strf("barrier %u episode %lld: %zu arrivals, %zu departures",
                 unsigned(ep.key.object), static_cast<long long>(ep.key.index),
                 ep.arrivals.size(), ep.departs.size()));
    }
  }

  const TraceIndex& idx_;
  const Trace& trace_;
  Tick slack_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> validate(const Trace& trace,
                                const ValidateOptions& options) {
  const TraceIndex index(trace);
  return Validator(index, options).run();
}

std::vector<Violation> validate(const TraceIndex& index,
                                const ValidateOptions& options) {
  return Validator(index, options).run();
}

bool is_valid(const Trace& trace, const ValidateOptions& options) {
  return validate(trace, options).empty();
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += violation_kind_name(v.kind);
    out += ": ";
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace perturb::trace
