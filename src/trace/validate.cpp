#include "trace/validate.hpp"

#include <cstdint>
#include <map>
#include <unordered_map>

#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneProcessorTime: return "non-monotone-proc-time";
    case ViolationKind::kAwaitEndBeforeAdvance: return "awaitE-before-advance";
    case ViolationKind::kAwaitEndWithoutAdvance: return "awaitE-without-advance";
    case ViolationKind::kAwaitEndWithoutBegin: return "awaitE-without-awaitB";
    case ViolationKind::kDuplicateAdvance: return "duplicate-advance";
    case ViolationKind::kLockOverlap: return "lock-overlap";
    case ViolationKind::kLockUnbalanced: return "lock-unbalanced";
    case ViolationKind::kBarrierOrder: return "barrier-order";
    case ViolationKind::kBarrierIncomplete: return "barrier-incomplete";
    case ViolationKind::kSemaphoreUnbalanced: return "semaphore-unbalanced";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

class Validator {
 public:
  Validator(const Trace& trace, const ValidateOptions& options)
      : trace_(trace), slack_(options.sync_slack) {}

  std::vector<Violation> run() {
    check_processor_monotonicity();
    check_advance_await();
    check_locks();
    check_semaphores();
    check_barriers();
    return std::move(violations_);
  }

 private:
  void add(ViolationKind kind, std::size_t index, std::string msg) {
    violations_.push_back({kind, std::move(msg), index});
  }

  void check_processor_monotonicity() {
    std::unordered_map<ProcId, Tick> last;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      const auto it = last.find(e.proc);
      if (it != last.end() && e.time < it->second) {
        add(ViolationKind::kNonMonotoneProcessorTime, i,
            strf("proc %u: time %lld after %lld", unsigned(e.proc),
                 static_cast<long long>(e.time),
                 static_cast<long long>(it->second)));
      }
      last[e.proc] = std::max(it == last.end() ? e.time : it->second, e.time);
    }
  }

  void check_advance_await() {
    struct AdvanceRec {
      Tick time;
      std::size_t index;
    };
    // Pre-index the advances: a duplicate is a violation wherever it
    // appears, and an awaitE must be checked against its paired advance even
    // if the advance appears later in trace order (which is itself the
    // kAwaitEndBeforeAdvance violation).
    std::unordered_map<SyncKey, AdvanceRec, SyncKeyHash> advances;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind != EventKind::kAdvance) continue;
      const auto [it, inserted] =
          advances.insert({SyncKey{e.object, e.payload}, {e.time, i}});
      if (!inserted)
        add(ViolationKind::kDuplicateAdvance, i,
            strf("advance(%u, %lld) repeated", unsigned(e.object),
                 static_cast<long long>(e.payload)));
    }

    // awaitB seen per (key, proc): key → proc → time.
    std::map<std::pair<SyncKey, ProcId>, Tick> await_begins;

    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      const SyncKey key{e.object, e.payload};
      switch (e.kind) {
        case EventKind::kAwaitBegin:
          await_begins[{key, e.proc}] = e.time;
          break;
        case EventKind::kAwaitEnd: {
          const auto ab = await_begins.find({key, e.proc});
          if (ab == await_begins.end()) {
            add(ViolationKind::kAwaitEndWithoutBegin, i,
                strf("awaitE(%u, %lld) without awaitB on proc %u",
                     unsigned(e.object), static_cast<long long>(e.payload),
                     unsigned(e.proc)));
          }
          const auto adv = advances.find(key);
          if (adv == advances.end()) {
            add(ViolationKind::kAwaitEndWithoutAdvance, i,
                strf("awaitE(%u, %lld) with no advance", unsigned(e.object),
                     static_cast<long long>(e.payload)));
          } else if (e.time + slack_ < adv->second.time) {
            add(ViolationKind::kAwaitEndBeforeAdvance, i,
                strf("awaitE(%u, %lld) at %lld precedes advance at %lld",
                     unsigned(e.object), static_cast<long long>(e.payload),
                     static_cast<long long>(e.time),
                     static_cast<long long>(adv->second.time)));
          }
          break;
        }
        default:
          break;
      }
    }
  }

  void check_locks() {
    // Per lock: acquisitions and releases must alternate globally, and the
    // critical sections they delimit must not overlap in time.
    struct LockState {
      bool held = false;
      ProcId holder = 0;
      Tick release_time = 0;
      bool has_prev_release = false;
    };
    std::unordered_map<ObjectId, LockState> locks;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kLockAcquire) {
        auto& st = locks[e.object];
        if (st.held) {
          add(ViolationKind::kLockUnbalanced, i,
              strf("lock %u acquired by proc %u while held by proc %u",
                   unsigned(e.object), unsigned(e.proc), unsigned(st.holder)));
        } else if (st.has_prev_release && e.time + slack_ < st.release_time) {
          add(ViolationKind::kLockOverlap, i,
              strf("lock %u acquired at %lld before previous release at %lld",
                   unsigned(e.object), static_cast<long long>(e.time),
                   static_cast<long long>(st.release_time)));
        }
        st.held = true;
        st.holder = e.proc;
      } else if (e.kind == EventKind::kLockRelease) {
        auto& st = locks[e.object];
        if (!st.held || st.holder != e.proc) {
          add(ViolationKind::kLockUnbalanced, i,
              strf("lock %u released by proc %u without matching acquire",
                   unsigned(e.object), unsigned(e.proc)));
        }
        st.held = false;
        st.release_time = e.time;
        st.has_prev_release = true;
      }
    }
    for (const auto& [obj, st] : locks) {
      if (st.held)
        add(ViolationKind::kLockUnbalanced, kNoEvent,
            strf("lock %u never released", unsigned(obj)));
    }
  }

  void check_semaphores() {
    // Capacity is not recorded in the trace, so the checkable rules are
    // per-processor: every V() must release a P() held by the same
    // processor, and no P() may be left held at the end.
    std::map<std::pair<ObjectId, ProcId>, std::int64_t> held;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kSemAcquire) {
        ++held[{e.object, e.proc}];
      } else if (e.kind == EventKind::kSemRelease) {
        auto& h = held[{e.object, e.proc}];
        if (h <= 0) {
          add(ViolationKind::kSemaphoreUnbalanced, i,
              strf("semaphore %u released by proc %u without a held acquire",
                   unsigned(e.object), unsigned(e.proc)));
        } else {
          --h;
        }
      }
    }
    for (const auto& [key, count] : held) {
      if (count > 0)
        add(ViolationKind::kSemaphoreUnbalanced, kNoEvent,
            strf("semaphore %u: proc %u ends holding %lld permit(s)",
                 unsigned(key.first), unsigned(key.second),
                 static_cast<long long>(count)));
    }
  }

  void check_barriers() {
    // Events carry payload = episode index.  Within an episode, every arrive
    // must precede every depart, and the counts must match.
    struct Episode {
      std::size_t arrivals = 0;
      std::size_t departures = 0;
      Tick last_arrive = 0;
      bool saw_depart = false;
    };
    std::map<std::pair<ObjectId, std::int64_t>, Episode> episodes;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      if (e.kind == EventKind::kBarrierArrive) {
        auto& ep = episodes[{e.object, e.payload}];
        ++ep.arrivals;
        ep.last_arrive = std::max(ep.last_arrive, e.time);
        if (ep.saw_depart)
          add(ViolationKind::kBarrierOrder, i,
              strf("barrier %u episode %lld: arrive after a depart",
                   unsigned(e.object), static_cast<long long>(e.payload)));
      } else if (e.kind == EventKind::kBarrierDepart) {
        auto& ep = episodes[{e.object, e.payload}];
        ep.saw_depart = true;
        ++ep.departures;
        if (e.time + slack_ < ep.last_arrive)
          add(ViolationKind::kBarrierOrder, i,
              strf("barrier %u episode %lld: depart at %lld before last "
                   "arrive at %lld",
                   unsigned(e.object), static_cast<long long>(e.payload),
                   static_cast<long long>(e.time),
                   static_cast<long long>(ep.last_arrive)));
      }
    }
    for (const auto& [key, ep] : episodes) {
      if (ep.arrivals != ep.departures)
        add(ViolationKind::kBarrierIncomplete, kNoEvent,
            strf("barrier %u episode %lld: %zu arrivals, %zu departures",
                 unsigned(key.first), static_cast<long long>(key.second),
                 ep.arrivals, ep.departures));
    }
  }

  const Trace& trace_;
  Tick slack_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> validate(const Trace& trace,
                                const ValidateOptions& options) {
  return Validator(trace, options).run();
}

bool is_valid(const Trace& trace, const ValidateOptions& options) {
  return validate(trace, options).empty();
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += violation_kind_name(v.kind);
    out += ": ";
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace perturb::trace
