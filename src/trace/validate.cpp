#include "trace/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <unordered_map>
#include <vector>

#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneProcessorTime: return "non-monotone-proc-time";
    case ViolationKind::kAwaitEndBeforeAdvance: return "awaitE-before-advance";
    case ViolationKind::kAwaitEndWithoutAdvance: return "awaitE-without-advance";
    case ViolationKind::kAwaitEndWithoutBegin: return "awaitE-without-awaitB";
    case ViolationKind::kDuplicateAdvance: return "duplicate-advance";
    case ViolationKind::kLockOverlap: return "lock-overlap";
    case ViolationKind::kLockUnbalanced: return "lock-unbalanced";
    case ViolationKind::kBarrierOrder: return "barrier-order";
    case ViolationKind::kBarrierIncomplete: return "barrier-incomplete";
    case ViolationKind::kSemaphoreUnbalanced: return "semaphore-unbalanced";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

/// Structural checks over the shared TraceIndex, fused into one pass over
/// the trace.  Each check appends to its own violation list so the combined
/// report keeps the historical per-check grouping (monotonicity, then
/// advance/await, then locks, semaphores, barriers) with every group in
/// ascending event order — the triage order the repair strategies expect.
class Validator {
 public:
  Validator(const TraceIndex& index, const ValidateOptions& options)
      : idx_(index), trace_(index.trace()), slack_(options.sync_slack) {}

  std::vector<Violation> run() {
    scan();
    finish_locks();
    finish_semaphores();
    finish_barriers();

    std::vector<Violation> out;
    out.reserve(mono_.size() + dup_.size() + await_.size() + locks_.size() +
                sems_.size() + barriers_.size());
    for (auto* v : {&mono_, &dup_, &await_, &locks_, &sems_, &barriers_}) {
      out.insert(out.end(), std::make_move_iterator(v->begin()),
                 std::make_move_iterator(v->end()));
    }
    return out;
  }

 private:
  static void add(std::vector<Violation>& sink, ViolationKind kind,
                  std::size_t index, std::string msg) {
    sink.push_back({kind, std::move(msg), index});
  }

  void scan() {
    const std::size_t procs = idx_.num_procs();
    // Per-processor monotonicity state.
    std::vector<Tick> running_max(procs, 0);
    std::vector<std::uint8_t> started(procs, 0);
    // Fast path for the awaitE begin check: the key of the latest awaitB on
    // each processor.  Well-formed traces pair every awaitE with the
    // processor's most recent awaitB, so the index search only runs when the
    // memo mismatches (corrupted traces).
    std::vector<SyncKey> last_await_key(procs);
    std::vector<std::uint8_t> has_await(procs, 0);
    // Running first-advance-per-key map.  At event i it holds the global
    // first advance for every key whose first advance precedes i, so a hit
    // replaces the index binary search; a miss falls back to the index to
    // catch advances appearing after their awaitE (itself a violation).
    first_adv_.reserve(trace_.size() / 4 + 1);

    // Duplicate advances are a violation wherever they appear; the index
    // preserves them in trace order.
    for (const std::size_t i : idx_.duplicate_advances()) {
      const Event& e = trace_[i];
      add(dup_, ViolationKind::kDuplicateAdvance, i,
          strf("advance(%u, %lld) repeated", unsigned(e.object),
               static_cast<long long>(e.payload)));
    }

    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      const auto p = static_cast<std::size_t>(e.proc);

      // Per-processor time must never run backwards.
      if (!started[p]) {
        started[p] = 1;
        running_max[p] = e.time;
      } else {
        if (e.time < running_max[p]) {
          add(mono_, ViolationKind::kNonMonotoneProcessorTime, i,
              strf("proc %u: time %lld after %lld", unsigned(e.proc),
                   static_cast<long long>(e.time),
                   static_cast<long long>(running_max[p])));
        }
        running_max[p] = std::max(running_max[p], e.time);
      }

      switch (e.kind) {
        case EventKind::kAdvance:
          // emplace keeps the first occurrence (trace order == scan order).
          first_adv_.emplace(SyncKey{e.object, e.payload}, i);
          break;
        case EventKind::kAwaitBegin:
          last_await_key[p] = SyncKey{e.object, e.payload};
          has_await[p] = 1;
          break;
        case EventKind::kAwaitEnd: check_await_end(i, e, last_await_key, has_await); break;
        case EventKind::kLockAcquire:
        case EventKind::kLockRelease: check_lock(i, e); break;
        case EventKind::kSemAcquire:
        case EventKind::kSemRelease: check_semaphore(i, e); break;
        case EventKind::kBarrierArrive:
        case EventKind::kBarrierDepart: check_barrier(i, e); break;
        default: break;
      }
    }
  }

  /// An awaitE is checked against its *first* advance even when the advance
  /// appears later in trace order (which is itself the
  /// kAwaitEndBeforeAdvance violation).
  void check_await_end(std::size_t i, const Event& e,
                       const std::vector<SyncKey>& last_await_key,
                       const std::vector<std::uint8_t>& has_await) {
    const SyncKey key{e.object, e.payload};
    const auto p = static_cast<std::size_t>(e.proc);
    const bool has_begin =
        (has_await[p] && last_await_key[p] == key) ||
        idx_.last_await_begin_before(key, e.proc, i) != TraceIndex::npos;
    if (!has_begin) {
      add(await_, ViolationKind::kAwaitEndWithoutBegin, i,
          strf("awaitE(%u, %lld) without awaitB on proc %u",
               unsigned(e.object), static_cast<long long>(e.payload),
               unsigned(e.proc)));
    }
    const auto it = first_adv_.find(key);
    const std::size_t adv =
        it != first_adv_.end() ? it->second : idx_.first_advance(key);
    if (adv == TraceIndex::npos) {
      add(await_, ViolationKind::kAwaitEndWithoutAdvance, i,
          strf("awaitE(%u, %lld) with no advance", unsigned(e.object),
               static_cast<long long>(e.payload)));
    } else if (e.time + slack_ < trace_[adv].time) {
      add(await_, ViolationKind::kAwaitEndBeforeAdvance, i,
          strf("awaitE(%u, %lld) at %lld precedes advance at %lld",
               unsigned(e.object), static_cast<long long>(e.payload),
               static_cast<long long>(e.time),
               static_cast<long long>(trace_[adv].time)));
    }
  }

  /// Acquisitions and releases must alternate globally per lock; the
  /// hand-off order itself (previous release of each acquire) comes from
  /// the index, the held/holder alternation state is a running scan.
  void check_lock(std::size_t i, const Event& e) {
    if (e.kind == EventKind::kLockAcquire) {
      auto& st = lock_state_[e.object];
      const std::size_t dep = idx_.lock_dep(i);
      if (st.held) {
        add(locks_, ViolationKind::kLockUnbalanced, i,
            strf("lock %u acquired by proc %u while held by proc %u",
                 unsigned(e.object), unsigned(e.proc), unsigned(st.holder)));
      } else if (dep != TraceIndex::npos &&
                 e.time + slack_ < trace_[dep].time) {
        add(locks_, ViolationKind::kLockOverlap, i,
            strf("lock %u acquired at %lld before previous release at %lld",
                 unsigned(e.object), static_cast<long long>(e.time),
                 static_cast<long long>(trace_[dep].time)));
      }
      st.held = true;
      st.holder = e.proc;
    } else {
      auto& st = lock_state_[e.object];
      if (!st.held || st.holder != e.proc) {
        add(locks_, ViolationKind::kLockUnbalanced, i,
            strf("lock %u released by proc %u without matching acquire",
                 unsigned(e.object), unsigned(e.proc)));
      }
      st.held = false;
    }
  }

  void finish_locks() {
    for (const auto& [obj, st] : lock_state_) {
      if (st.held)
        add(locks_, ViolationKind::kLockUnbalanced, kNoEvent,
            strf("lock %u never released", unsigned(obj)));
    }
  }

  /// Capacity is not recorded in the trace, so the checkable rules are
  /// per-processor: every V() must release a P() held by the same
  /// processor, and no P() may be left held at the end.
  void check_semaphore(std::size_t i, const Event& e) {
    if (e.kind == EventKind::kSemAcquire) {
      ++sem_held_[{e.object, e.proc}];
    } else {
      auto& h = sem_held_[{e.object, e.proc}];
      if (h <= 0) {
        add(sems_, ViolationKind::kSemaphoreUnbalanced, i,
            strf("semaphore %u released by proc %u without a held acquire",
                 unsigned(e.object), unsigned(e.proc)));
      } else {
        --h;
      }
    }
  }

  void finish_semaphores() {
    for (const auto& [key, count] : sem_held_) {
      if (count > 0)
        add(sems_, ViolationKind::kSemaphoreUnbalanced, kNoEvent,
            strf("semaphore %u: proc %u ends holding %lld permit(s)",
                 unsigned(key.first), unsigned(key.second),
                 static_cast<long long>(count)));
    }
  }

  /// Latest arrival time among `episode`'s arrivals before trace index i.
  Tick last_arrive_before(const TraceIndex::BarrierEpisode& episode,
                          std::size_t i) const {
    Tick last = 0;
    for (const std::size_t a : episode.arrivals) {
      if (a >= i) break;  // arrivals are in trace order
      last = std::max(last, trace_[a].time);
    }
    return last;
  }

  /// Events carry payload = episode index.  Within an episode, every arrive
  /// must precede every depart, and the counts must match.
  void check_barrier(std::size_t i, const Event& e) {
    if (e.kind == EventKind::kBarrierArrive) {
      const auto* ep = idx_.barrier_episode(e.object, e.payload);
      if (ep != nullptr && !ep->departs.empty() && ep->departs.front() < i)
        add(barriers_, ViolationKind::kBarrierOrder, i,
            strf("barrier %u episode %lld: arrive after a depart",
                 unsigned(e.object), static_cast<long long>(e.payload)));
    } else {
      const auto* ep = idx_.barrier_episode(e.object, e.payload);
      const Tick last_arrive = ep == nullptr ? 0 : last_arrive_before(*ep, i);
      if (e.time + slack_ < last_arrive)
        add(barriers_, ViolationKind::kBarrierOrder, i,
            strf("barrier %u episode %lld: depart at %lld before last "
                 "arrive at %lld",
                 unsigned(e.object), static_cast<long long>(e.payload),
                 static_cast<long long>(e.time),
                 static_cast<long long>(last_arrive)));
    }
  }

  void finish_barriers() {
    for (const auto& ep : idx_.barrier_episodes()) {
      if (ep.arrivals.size() != ep.departs.size())
        add(barriers_, ViolationKind::kBarrierIncomplete, kNoEvent,
            strf("barrier %u episode %lld: %zu arrivals, %zu departures",
                 unsigned(ep.key.object), static_cast<long long>(ep.key.index),
                 ep.arrivals.size(), ep.departs.size()));
    }
  }

  struct LockState {
    bool held = false;
    ProcId holder = 0;
  };

  const TraceIndex& idx_;
  const Trace& trace_;
  Tick slack_;
  std::unordered_map<SyncKey, std::size_t, SyncKeyHash> first_adv_;
  std::unordered_map<ObjectId, LockState> lock_state_;
  std::map<std::pair<ObjectId, ProcId>, std::int64_t> sem_held_;
  std::vector<Violation> mono_;
  std::vector<Violation> dup_;
  std::vector<Violation> await_;
  std::vector<Violation> locks_;
  std::vector<Violation> sems_;
  std::vector<Violation> barriers_;
};

}  // namespace

std::vector<Violation> validate(const Trace& trace,
                                const ValidateOptions& options) {
  const TraceIndex index(trace);
  return Validator(index, options).run();
}

std::vector<Violation> validate(const TraceIndex& index,
                                const ValidateOptions& options) {
  return Validator(index, options).run();
}

bool is_valid(const Trace& trace, const ValidateOptions& options) {
  return validate(trace, options).empty();
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += violation_kind_name(v.kind);
    out += ": ";
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace perturb::trace
