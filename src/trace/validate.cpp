#include "trace/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iterator>
#include <map>
#include <unordered_map>
#include <vector>

#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kNonMonotoneProcessorTime: return "non-monotone-proc-time";
    case ViolationKind::kAwaitEndBeforeAdvance: return "awaitE-before-advance";
    case ViolationKind::kAwaitEndWithoutAdvance: return "awaitE-without-advance";
    case ViolationKind::kAwaitEndWithoutBegin: return "awaitE-without-awaitB";
    case ViolationKind::kDuplicateAdvance: return "duplicate-advance";
    case ViolationKind::kLockOverlap: return "lock-overlap";
    case ViolationKind::kLockUnbalanced: return "lock-unbalanced";
    case ViolationKind::kBarrierOrder: return "barrier-order";
    case ViolationKind::kBarrierIncomplete: return "barrier-incomplete";
    case ViolationKind::kSemaphoreUnbalanced: return "semaphore-unbalanced";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

/// Structural checks over the shared TraceIndex, fused into one pass over
/// the trace.  Each check appends to its own violation list so the combined
/// report keeps the historical per-check grouping (monotonicity, then
/// advance/await, then locks, semaphores, barriers) with every group in
/// ascending event order — the triage order the repair strategies expect.
class Validator {
 public:
  Validator(const TraceIndex& index, const ValidateOptions& options)
      : idx_(index), trace_(index.trace()), slack_(options.sync_slack) {}

  std::vector<Violation> run() {
    scan();
    finish_locks();
    finish_semaphores();
    finish_barriers();

    std::vector<Violation> out;
    out.reserve(mono_.size() + dup_.size() + await_.size() + locks_.size() +
                sems_.size() + barriers_.size());
    for (auto* v : {&mono_, &dup_, &await_, &locks_, &sems_, &barriers_}) {
      out.insert(out.end(), std::make_move_iterator(v->begin()),
                 std::make_move_iterator(v->end()));
    }
    return out;
  }

 private:
  struct PendingAcquire {
    std::size_t index;   ///< trace index of the parked acquire
    Tick release_time;   ///< its own release's timestamp, once seen
    ProcId proc;
    ProcId seen_holder;  ///< who appeared to hold the lock at park time
    bool released;
  };

  struct LockState {
    bool held = false;
    ProcId holder = 0;
    /// Acquires observed while the lock looked held (slack mode only),
    /// awaiting the delayed release event that explains them.
    std::deque<PendingAcquire> pending;
  };

  static void add(std::vector<Violation>& sink, ViolationKind kind,
                  std::size_t index, std::string msg) {
    sink.push_back({kind, std::move(msg), index});
  }

  void scan() {
    const std::size_t procs = idx_.num_procs();
    // Per-processor monotonicity state.
    std::vector<Tick> running_max(procs, 0);
    std::vector<std::uint8_t> started(procs, 0);
    // Fast path for the awaitE begin check: the key of the latest awaitB on
    // each processor.  Well-formed traces pair every awaitE with the
    // processor's most recent awaitB, so the index search only runs when the
    // memo mismatches (corrupted traces).
    std::vector<SyncKey> last_await_key(procs);
    std::vector<std::uint8_t> has_await(procs, 0);
    // Running first-advance-per-key map.  At event i it holds the global
    // first advance for every key whose first advance precedes i, so a hit
    // replaces the index binary search; a miss falls back to the index to
    // catch advances appearing after their awaitE (itself a violation).
    first_adv_.reserve(trace_.size() / 4 + 1);

    // Duplicate advances are a violation wherever they appear; the index
    // preserves them in trace order.
    for (const std::size_t i : idx_.duplicate_advances()) {
      const Event& e = trace_[i];
      add(dup_, ViolationKind::kDuplicateAdvance, i,
          strf("advance(%u, %lld) repeated", unsigned(e.object),
               static_cast<long long>(e.payload)));
    }

    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Event& e = trace_[i];
      const auto p = static_cast<std::size_t>(e.proc);

      // Per-processor time must never run backwards.
      if (!started[p]) {
        started[p] = 1;
        running_max[p] = e.time;
      } else {
        if (e.time < running_max[p]) {
          add(mono_, ViolationKind::kNonMonotoneProcessorTime, i,
              strf("proc %u: time %lld after %lld", unsigned(e.proc),
                   static_cast<long long>(e.time),
                   static_cast<long long>(running_max[p])));
        }
        running_max[p] = std::max(running_max[p], e.time);
      }

      switch (e.kind) {
        case EventKind::kAdvance:
          // emplace keeps the first occurrence (trace order == scan order).
          first_adv_.emplace(SyncKey{e.object, e.payload}, i);
          break;
        case EventKind::kAwaitBegin:
          last_await_key[p] = SyncKey{e.object, e.payload};
          has_await[p] = 1;
          break;
        case EventKind::kAwaitEnd: check_await_end(i, e, last_await_key, has_await); break;
        case EventKind::kLockAcquire:
        case EventKind::kLockRelease: check_lock(i, e); break;
        case EventKind::kSemAcquire:
        case EventKind::kSemRelease: check_semaphore(i, e); break;
        case EventKind::kBarrierArrive:
        case EventKind::kBarrierDepart: check_barrier(i, e); break;
        default: break;
      }
    }
  }

  /// An awaitE is checked against its *first* advance even when the advance
  /// appears later in trace order (which is itself the
  /// kAwaitEndBeforeAdvance violation).
  void check_await_end(std::size_t i, const Event& e,
                       const std::vector<SyncKey>& last_await_key,
                       const std::vector<std::uint8_t>& has_await) {
    const SyncKey key{e.object, e.payload};
    const auto p = static_cast<std::size_t>(e.proc);
    const bool has_begin =
        (has_await[p] && last_await_key[p] == key) ||
        idx_.last_await_begin_before(key, e.proc, i) != TraceIndex::npos;
    if (!has_begin) {
      add(await_, ViolationKind::kAwaitEndWithoutBegin, i,
          strf("awaitE(%u, %lld) without awaitB on proc %u",
               unsigned(e.object), static_cast<long long>(e.payload),
               unsigned(e.proc)));
    }
    const auto it = first_adv_.find(key);
    const std::size_t adv =
        it != first_adv_.end() ? it->second : idx_.first_advance(key);
    if (adv == TraceIndex::npos) {
      add(await_, ViolationKind::kAwaitEndWithoutAdvance, i,
          strf("awaitE(%u, %lld) with no advance", unsigned(e.object),
               static_cast<long long>(e.payload)));
    } else if (e.time + slack_ < trace_[adv].time) {
      add(await_, ViolationKind::kAwaitEndBeforeAdvance, i,
          strf("awaitE(%u, %lld) at %lld precedes advance at %lld",
               unsigned(e.object), static_cast<long long>(e.payload),
               static_cast<long long>(e.time),
               static_cast<long long>(trace_[adv].time)));
    }
  }

  /// Acquisitions and releases must alternate globally per lock; the
  /// hand-off order itself (previous release of each acquire) comes from
  /// the index, the held/holder alternation state is a running scan.
  ///
  /// With a nonzero slack the alternation check tolerates probe-reordered
  /// hand-offs.  The recorder stamps each event after charging its probe,
  /// but a release makes the lock visible to waiters *before* the release
  /// probe runs, so in measured traces the hand-off acquire can carry an
  /// earlier timestamp than the release that granted it.  Acquires seen
  /// while the lock looks held are parked and resolved against the next
  /// release(s); only overlaps wider than the slack are violations.
  void check_lock(std::size_t i, const Event& e) {
    auto& st = lock_state_[e.object];
    if (e.kind == EventKind::kLockAcquire) {
      if (st.held) {
        if (slack_ > 0) {
          st.pending.push_back({i, 0, e.proc, st.holder, false});
          return;
        }
        add(locks_, ViolationKind::kLockUnbalanced, i,
            strf("lock %u acquired by proc %u while held by proc %u",
                 unsigned(e.object), unsigned(e.proc), unsigned(st.holder)));
      } else {
        const std::size_t dep = idx_.lock_dep(i);
        if (dep != TraceIndex::npos && e.time + slack_ < trace_[dep].time) {
          add(locks_, ViolationKind::kLockOverlap, i,
              strf("lock %u acquired at %lld before previous release at %lld",
                   unsigned(e.object), static_cast<long long>(e.time),
                   static_cast<long long>(trace_[dep].time)));
        }
      }
      st.held = true;
      st.holder = e.proc;
      return;
    }
    if (st.held && st.holder == e.proc) {
      st.held = false;
      resolve_pending(e.object, st, e.time);
      return;
    }
    // A hand-off acquirer can run its whole critical section before the
    // previous holder's delayed release event appears; its release then
    // closes the parked acquire rather than the visible holder's.
    for (auto& pa : st.pending) {
      if (!pa.released && pa.proc == e.proc) {
        pa.released = true;
        pa.release_time = e.time;
        return;
      }
    }
    add(locks_, ViolationKind::kLockUnbalanced, i,
        strf("lock %u released by proc %u without matching acquire",
             unsigned(e.object), unsigned(e.proc)));
    st.held = false;
  }

  /// Pops parked acquires explained by the release at `free_time`.  Each
  /// entry must overlap its explaining release by at most the slack; the
  /// first entry whose release is still outstanding becomes the holder, and
  /// already-closed entries chain the explanation to their own release.
  void resolve_pending(ObjectId obj, LockState& st, Tick free_time) {
    while (!st.pending.empty()) {
      const PendingAcquire pa = st.pending.front();
      st.pending.pop_front();
      if (trace_[pa.index].time + slack_ < free_time) {
        add(locks_, ViolationKind::kLockUnbalanced, pa.index,
            strf("lock %u acquired by proc %u while held by proc %u",
                 unsigned(obj), unsigned(pa.proc), unsigned(pa.seen_holder)));
      }
      if (!pa.released) {
        st.held = true;
        st.holder = pa.proc;
        return;
      }
      free_time = pa.release_time;
    }
  }

  void finish_locks() {
    for (const auto& [obj, st] : lock_state_) {
      if (st.held)
        add(locks_, ViolationKind::kLockUnbalanced, kNoEvent,
            strf("lock %u never released", unsigned(obj)));
      // Parked acquires with no explaining release are real overlaps.
      for (const auto& pa : st.pending) {
        add(locks_, ViolationKind::kLockUnbalanced, pa.index,
            strf("lock %u acquired by proc %u while held by proc %u",
                 unsigned(obj), unsigned(pa.proc), unsigned(pa.seen_holder)));
      }
    }
    // Deferred resolution emits out of scan order; restore the ascending
    // event order the repair triage expects (kNoEvent sorts last).
    if (slack_ > 0) {
      std::stable_sort(locks_.begin(), locks_.end(),
                       [](const Violation& a, const Violation& b) {
                         return a.event_index < b.event_index;
                       });
    }
  }

  /// Capacity is not recorded in the trace, so the checkable rules are
  /// per-processor: every V() must release a P() held by the same
  /// processor, and no P() may be left held at the end.
  void check_semaphore(std::size_t i, const Event& e) {
    if (e.kind == EventKind::kSemAcquire) {
      ++sem_held_[{e.object, e.proc}];
    } else {
      auto& h = sem_held_[{e.object, e.proc}];
      if (h <= 0) {
        add(sems_, ViolationKind::kSemaphoreUnbalanced, i,
            strf("semaphore %u released by proc %u without a held acquire",
                 unsigned(e.object), unsigned(e.proc)));
      } else {
        --h;
      }
    }
  }

  void finish_semaphores() {
    for (const auto& [key, count] : sem_held_) {
      if (count > 0)
        add(sems_, ViolationKind::kSemaphoreUnbalanced, kNoEvent,
            strf("semaphore %u: proc %u ends holding %lld permit(s)",
                 unsigned(key.first), unsigned(key.second),
                 static_cast<long long>(count)));
    }
  }

  /// Latest arrival time among `episode`'s arrivals before trace index i.
  Tick last_arrive_before(const TraceIndex::BarrierEpisode& episode,
                          std::size_t i) const {
    Tick last = 0;
    for (const std::size_t a : episode.arrivals) {
      if (a >= i) break;  // arrivals are in trace order
      last = std::max(last, trace_[a].time);
    }
    return last;
  }

  /// Events carry payload = episode index.  Within an episode, every arrive
  /// must precede every depart, and the counts must match.
  void check_barrier(std::size_t i, const Event& e) {
    if (e.kind == EventKind::kBarrierArrive) {
      const auto* ep = idx_.barrier_episode(e.object, e.payload);
      if (ep != nullptr && !ep->departs.empty() && ep->departs.front() < i)
        add(barriers_, ViolationKind::kBarrierOrder, i,
            strf("barrier %u episode %lld: arrive after a depart",
                 unsigned(e.object), static_cast<long long>(e.payload)));
    } else {
      const auto* ep = idx_.barrier_episode(e.object, e.payload);
      const Tick last_arrive = ep == nullptr ? 0 : last_arrive_before(*ep, i);
      if (e.time + slack_ < last_arrive)
        add(barriers_, ViolationKind::kBarrierOrder, i,
            strf("barrier %u episode %lld: depart at %lld before last "
                 "arrive at %lld",
                 unsigned(e.object), static_cast<long long>(e.payload),
                 static_cast<long long>(e.time),
                 static_cast<long long>(last_arrive)));
    }
  }

  void finish_barriers() {
    for (const auto& ep : idx_.barrier_episodes()) {
      if (ep.arrivals.size() != ep.departs.size())
        add(barriers_, ViolationKind::kBarrierIncomplete, kNoEvent,
            strf("barrier %u episode %lld: %zu arrivals, %zu departures",
                 unsigned(ep.key.object), static_cast<long long>(ep.key.index),
                 ep.arrivals.size(), ep.departs.size()));
    }
  }

  const TraceIndex& idx_;
  const Trace& trace_;
  Tick slack_;
  std::unordered_map<SyncKey, std::size_t, SyncKeyHash> first_adv_;
  std::unordered_map<ObjectId, LockState> lock_state_;
  std::map<std::pair<ObjectId, ProcId>, std::int64_t> sem_held_;
  std::vector<Violation> mono_;
  std::vector<Violation> dup_;
  std::vector<Violation> await_;
  std::vector<Violation> locks_;
  std::vector<Violation> sems_;
  std::vector<Violation> barriers_;
};

}  // namespace

std::vector<Violation> validate(const Trace& trace,
                                const ValidateOptions& options) {
  const TraceIndex index(trace);
  return Validator(index, options).run();
}

std::vector<Violation> validate(const TraceIndex& index,
                                const ValidateOptions& options) {
  return Validator(index, options).run();
}

bool is_valid(const Trace& trace, const ValidateOptions& options) {
  return validate(trace, options).empty();
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += violation_kind_name(v.kind);
    out += ": ";
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace perturb::trace
