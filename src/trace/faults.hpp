// Fault injection for traces: seeded, deterministic corruptors used by the
// robustness tests, the binary-format fuzzers, and the corruption-accuracy
// bench.  Two layers:
//
//   * trace-level faults model degraded *capture* (dropped events from full
//     buffers, skewed clocks, torn runs) and injection of a minimal instance
//     of each ViolationKind for exercising the repair pipeline;
//   * byte-level faults model degraded *storage* (bit rot, truncated files)
//     applied to a serialized trace image.
//
// Everything is reproducible from the explicit seed; no global state.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace perturb::trace {

// ---- trace-level faults --------------------------------------------------

/// Drops events of `kind`, keeping one in `keep_one_in` (seeded).  Models a
/// producer losing a class of records (e.g. advances) to a full buffer.
Trace drop_events(const Trace& trace, EventKind kind,
                  std::uint64_t keep_one_in, std::uint64_t seed = 7);

/// Drops each event independently with probability `drop_rate` (0..1).
/// Program begin/end markers are kept so the timeline stays anchored.
Trace drop_random_events(const Trace& trace, double drop_rate,
                         std::uint64_t seed);

/// Moves each event's timestamp back by up to `max_skew` ticks with
/// probability `rate`, producing non-monotone per-processor clocks.
Trace skew_timestamps(const Trace& trace, Tick max_skew, double rate,
                      std::uint64_t seed);

/// Keeps only the first `keep_fraction` of the events — a torn capture.
Trace truncate_trace(const Trace& trace, double keep_fraction);

/// Appends a minimal, self-contained scenario exhibiting `kind` to a copy
/// of `trace` (works on any base trace, including an empty one).  The
/// injected events use object ids above kFaultObjectBase so they cannot
/// collide with real synchronization objects.
Trace inject_violation(const Trace& trace, ViolationKind kind);

/// Object-id floor for events synthesized by inject_violation.
inline constexpr ObjectId kFaultObjectBase = 0xFFFF000;

// ---- byte-level faults ---------------------------------------------------

/// Flips `flips` random bits anywhere in `bytes` (seeded, in place).
void flip_bits(std::string& bytes, std::size_t flips, std::uint64_t seed);

/// Returns the first `keep_fraction` of `bytes` — a torn file.
std::string truncate_bytes(const std::string& bytes, double keep_fraction);

}  // namespace perturb::trace
