// Incremental reader for binary trace format v2.
//
// The batch readers in io.hpp materialize a whole Trace before anything can
// look at it.  ChunkReader instead yields decoded, CRC-validated event
// chunks one at a time, either over a borrowed in-memory file image (e.g. a
// FileImage) or from an arbitrary byte feed (a socket), so callers can
// index and analyze a trace with O(chunk) resident bytes.
//
// Parity contract: on any byte sequence, the chunks a ChunkReader yields
// concatenate to exactly the events read_binary / read_binary_salvage would
// produce, with the same defect diagnoses in its SalvageReport and the same
// exceptions in strict mode.  The one documented divergence: the batch
// strict reader pre-checks the declared event count against the bytes
// remaining in the image; a feed cannot know its total size, so an
// over-declared count surfaces as the per-chunk defect it tears into
// instead.  Format v1 is unframed and cannot be streamed; it is rejected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace perturb::trace {

/// Events per v2 chunk frame (mirrors the writer in io.cpp).  Streaming
/// windows are naturally measured in multiples of this.
inline constexpr std::size_t kStreamChunkEvents = 1024;

class ChunkReader {
 public:
  enum class Status {
    kChunk,     ///< `out` holds the next validated chunk of events
    kNeedMore,  ///< feed more bytes (or finish()) before the next chunk
    kEnd,       ///< no more events (all read, or salvage stopped at a defect)
  };

  /// Feed-mode reader: push bytes with feed(), call finish() at EOF.
  explicit ChunkReader(bool salvage = false);

  /// Borrowed-image reader over a complete file image (the bytes must
  /// outlive the reader).  Already finished: next() never needs more.
  ChunkReader(const char* data, std::size_t size, bool salvage = false);

  /// Appends bytes to the feed.  Only valid in feed mode, before finish().
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Marks end-of-stream: subsequent next() calls treat missing bytes as
  /// truncation instead of returning kNeedMore.
  void finish() { finished_ = true; }

  /// Advances the reader.  On kChunk, `out` is replaced with the chunk's
  /// events.  Strict mode throws MalformedTraceError on header defects and
  /// IoError on body defects (exactly like read_binary); salvage mode
  /// records body defects in report() and returns kEnd (header defects
  /// still throw, exactly like read_binary_salvage).
  Status next(std::vector<Event>& out);

  /// True once the v2 header has been parsed; info() and events_declared()
  /// are meaningful from then on.
  bool header_ready() const { return header_ready_; }
  const TraceInfo& info() const { return info_; }
  std::uint64_t events_declared() const { return count_; }

  /// Events handed out via next() so far (including a salvaged partial
  /// chunk's prefix).
  std::uint64_t events_read() const { return decoded_events_; }

  /// Salvage outcome so far; final once next() has returned kEnd.  Field
  /// semantics match read_binary_salvage.
  const SalvageReport& report() const { return report_; }

 private:
  enum class State { kMagic, kHeader, kChunks, kDone };

  std::size_t avail() const {
    return (borrowed_ ? data_size_ : buf_.size()) - pos_;
  }
  const char* cur() const {
    return (borrowed_ ? data_ : buf_.data()) + pos_;
  }
  void consume(std::size_t n) { pos_ += n; }

  /// Body-level defect: strict mode throws IoError; salvage mode records
  /// the first diagnosis and stops the reader.
  void defect(const std::string& msg);

  bool salvage_ = false;
  bool borrowed_ = false;
  bool finished_ = false;
  State state_ = State::kMagic;

  std::string buf_;             ///< feed-mode backing store
  const char* data_ = nullptr;  ///< borrowed-image backing store
  std::size_t data_size_ = 0;
  std::size_t pos_ = 0;  ///< consumed offset into the backing store
  std::uint64_t total_bytes_ = 0;

  TraceInfo info_;
  bool header_ready_ = false;
  std::uint64_t count_ = 0;          ///< events declared by the header
  std::uint64_t read_events_ = 0;    ///< events covered by validated chunks
  std::uint64_t decoded_events_ = 0; ///< events handed out (incl. prefixes)
  SalvageReport report_;
};

}  // namespace perturb::trace
