#include "trace/trace_stats.hpp"

#include <cmath>
#include <vector>
#include <map>
#include <tuple>

#include "support/stats.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.total_events = trace.size();
  s.per_proc_events.assign(trace.info().num_procs, 0);
  for (const auto& e : trace) {
    s.kind_counts[static_cast<std::size_t>(e.kind)]++;
    if (e.proc < s.per_proc_events.size()) s.per_proc_events[e.proc]++;
  }
  s.span = trace.span();
  s.total_time = trace.total_time();
  return s;
}

std::string render_stats(const TraceStats& stats) {
  std::string out = strf("events: %zu  span: %lld  total: %lld\n",
                         stats.total_events, static_cast<long long>(stats.span),
                         static_cast<long long>(stats.total_time));
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (stats.kind_counts[k] == 0) continue;
    out += strf("  %-12s %zu\n", event_kind_name(static_cast<EventKind>(k)),
                stats.kind_counts[k]);
  }
  for (std::size_t p = 0; p < stats.per_proc_events.size(); ++p)
    out += strf("  proc %-2zu      %zu\n", p, stats.per_proc_events[p]);
  return out;
}

TraceComparison compare(const Trace& a, const Trace& b) {
  // Match key: identity of the instrumented action plus its per-processor
  // occurrence ordinal (the same statement can execute many times).
  using Key = std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t,
                         std::size_t>;
  std::map<Key, Tick> b_times;
  {
    std::map<std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t>,
             std::size_t>
        ordinal;
    for (const auto& e : b) {
      const auto base = std::make_tuple(e.proc, e.kind, e.id, e.object, e.payload);
      const std::size_t n = ordinal[base]++;
      b_times[std::tuple_cat(base, std::make_tuple(n))] = e.time;
    }
  }

  TraceComparison c;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::vector<double> abs_errors;
  {
    std::map<std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t>,
             std::size_t>
        ordinal;
    for (const auto& e : a) {
      const auto base = std::make_tuple(e.proc, e.kind, e.id, e.object, e.payload);
      const std::size_t n = ordinal[base]++;
      const auto it = b_times.find(std::tuple_cat(base, std::make_tuple(n)));
      if (it == b_times.end()) {
        ++c.unmatched_a;
        continue;
      }
      ++c.matched_events;
      const auto err = static_cast<double>(e.time - it->second);
      abs_sum += std::abs(err);
      sq_sum += err * err;
      abs_errors.push_back(std::abs(err));
      c.max_abs_time_error =
          std::max(c.max_abs_time_error, static_cast<Tick>(std::llabs(
                                              static_cast<long long>(err))));
      b_times.erase(it);
    }
  }
  c.unmatched_b = b_times.size();
  if (c.matched_events > 0) {
    c.mean_abs_time_error = abs_sum / static_cast<double>(c.matched_events);
    c.rms_time_error = std::sqrt(sq_sum / static_cast<double>(c.matched_events));
    c.p50_abs_time_error = support::percentile(abs_errors, 0.5);
    c.p95_abs_time_error = support::percentile(std::move(abs_errors), 0.95);
  }
  const auto bt = static_cast<double>(b.total_time());
  c.total_time_ratio = bt != 0.0 ? static_cast<double>(a.total_time()) / bt : 0.0;
  return c;
}

}  // namespace perturb::trace
