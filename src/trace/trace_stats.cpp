#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <type_traits>
#include <vector>

#include "support/stats.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.total_events = trace.size();
  s.per_proc_events.assign(trace.info().num_procs, 0);
  for (const auto& e : trace) {
    s.kind_counts[static_cast<std::size_t>(e.kind)]++;
    if (e.proc < s.per_proc_events.size()) s.per_proc_events[e.proc]++;
  }
  s.span = trace.span();
  s.total_time = trace.total_time();
  return s;
}

void StatsBuilder::add(const Event& e) {
  if (stats_.total_events == 0) {
    min_ = e.time;
    max_ = e.time;
  } else {
    min_ = std::min(min_, e.time);
    max_ = std::max(max_, e.time);
  }
  ++stats_.total_events;
  ++stats_.kind_counts[static_cast<std::size_t>(e.kind)];
  if (e.proc < stats_.per_proc_events.size()) ++stats_.per_proc_events[e.proc];
  if (e.kind == EventKind::kProgramBegin && !have_begin_) {
    begin_ = e.time;
    have_begin_ = true;
  } else if (e.kind == EventKind::kProgramEnd) {
    end_ = e.time;
    have_end_ = true;
  }
}

TraceStats StatsBuilder::build() const {
  TraceStats s = stats_;
  s.span = stats_.total_events == 0 ? 0 : max_ - min_;
  s.total_time = have_begin_ && have_end_ ? end_ - begin_ : s.span;
  return s;
}

std::string render_stats(const TraceStats& stats) {
  std::string out = strf("events: %zu  span: %lld  total: %lld\n",
                         stats.total_events, static_cast<long long>(stats.span),
                         static_cast<long long>(stats.total_time));
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (stats.kind_counts[k] == 0) continue;
    out += strf("  %-12s %zu\n", event_kind_name(static_cast<EventKind>(k)),
                stats.kind_counts[k]);
  }
  for (std::size_t p = 0; p < stats.per_proc_events.size(); ++p)
    out += strf("  proc %-2zu      %zu\n", p, stats.per_proc_events[p]);
  return out;
}

namespace {

/// Event-match identity (everything but time and ordinal), packed for
/// hashing.  proc_kind doubles as the occupancy flag of the open-addressing
/// table below: real values fit 24 bits, so the all-ones pattern is free.
struct MatchKey {
  std::uint64_t id_object = 0;  ///< id << 32 | object
  std::uint64_t proc_kind = 0;  ///< proc << 8 | kind
  std::int64_t payload = 0;

  friend bool operator==(const MatchKey&, const MatchKey&) = default;
};

constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

// The packing above is collision-free only while the fields fit their
// shifts: id and object must each fit 32 bits, proc must fit 24 bits above
// the 8-bit kind so `proc << 8 | kind` can never alias a different (proc,
// kind) pair — nor reach the kEmptySlot occupancy sentinel.  If any of
// these types ever widens, MatchKey must widen with it.
static_assert(sizeof(EventId) <= 4, "MatchKey packs id into 32 bits");
static_assert(sizeof(ObjectId) <= 4, "MatchKey packs object into 32 bits");
static_assert(sizeof(ProcId) <= 2, "MatchKey packs proc above an 8-bit kind");
static_assert(sizeof(std::underlying_type_t<EventKind>) == 1,
              "MatchKey packs kind into 8 bits");
static_assert(((std::uint64_t{std::numeric_limits<ProcId>::max()} << 8) |
               0xff) != kEmptySlot,
              "a real proc_kind must never equal the empty-slot sentinel");

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_key(const MatchKey& k) noexcept {
  const auto payload = mix64(static_cast<std::uint64_t>(k.payload));
  return mix64(k.id_object ^ mix64(k.proc_kind ^ payload));
}

MatchKey key_of(const Event& e) noexcept {
  MatchKey k;
  k.id_object = (static_cast<std::uint64_t>(e.id) << 32) | e.object;
  k.proc_kind = (static_cast<std::uint64_t>(e.proc) << 8) |
                static_cast<std::uint64_t>(e.kind);
  k.payload = e.payload;
  return k;
}

/// Open-addressing map from MatchKey to b's occurrence list: statement
/// payloads carry the iteration index, so most keys occur exactly once and
/// node-based maps pay an allocation per *event*.  This table is two flat
/// arrays: linear-probed slots and a shared times buffer sliced per key.
class MatchTable {
 public:
  explicit MatchTable(std::size_t max_keys) {
    std::size_t cap = 16;
    while (cap < max_keys * 2) cap <<= 1;  // load factor <= 0.5
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  struct Slot {
    MatchKey key{0, kEmptySlot, 0};
    std::uint32_t count = 0;   ///< occurrences of this key in b
    std::uint32_t cursor = 0;  ///< fill cursor, then a's match cursor
    std::uint64_t base = 0;    ///< first index in the shared times buffer
  };

  Slot& find_or_insert(const MatchKey& k) {
    std::size_t i = hash_key(k) & mask_;
    for (;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key.proc_kind == kEmptySlot) {
        s.key = k;
        return s;
      }
      if (s.key == k) return s;
    }
  }

  Slot* find(const MatchKey& k) {
    std::size_t i = hash_key(k) & mask_;
    for (;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key.proc_kind == kEmptySlot) return nullptr;
      if (s.key == k) return &s;
    }
  }

  std::vector<Slot>& slots() noexcept { return slots_; }

 private:
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace

TraceComparison compare(const Trace& a, const Trace& b) {
  // Count b's occurrences per key, slice one shared buffer by those counts,
  // then fill it in b order so slices are ordinal-ordered.
  MatchTable table(b.size());
  for (const auto& e : b) ++table.find_or_insert(key_of(e)).count;
  std::uint64_t base = 0;
  for (auto& s : table.slots()) {
    if (s.key.proc_kind == kEmptySlot) continue;
    s.base = base;
    base += s.count;
  }
  std::vector<Tick> b_times(b.size());
  for (const auto& e : b) {
    auto& s = *table.find(key_of(e));
    b_times[s.base + s.cursor++] = e.time;
  }
  for (auto& s : table.slots()) s.cursor = 0;

  // Walk a in trace order: the nth occurrence of a key matches the nth
  // occurrence in b.  Accumulation order over `a` is identical to
  // compare_reference, so the floating-point results are bit-identical.
  TraceComparison c;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::vector<double> abs_errors;
  for (const auto& e : a) {
    auto* s = table.find(key_of(e));
    if (s == nullptr || s->cursor == s->count) {
      ++c.unmatched_a;
      continue;
    }
    ++c.matched_events;
    const auto err =
        static_cast<double>(e.time - b_times[s->base + s->cursor++]);
    abs_sum += std::abs(err);
    sq_sum += err * err;
    abs_errors.push_back(std::abs(err));
    c.max_abs_time_error =
        std::max(c.max_abs_time_error,
                 static_cast<Tick>(std::llabs(static_cast<long long>(err))));
  }
  c.unmatched_b = b.size() - c.matched_events;
  if (c.matched_events > 0) {
    c.mean_abs_time_error = abs_sum / static_cast<double>(c.matched_events);
    c.rms_time_error = std::sqrt(sq_sum / static_cast<double>(c.matched_events));
    c.p50_abs_time_error = support::percentile_inplace(abs_errors, 0.5);
    c.p95_abs_time_error = support::percentile_inplace(abs_errors, 0.95);
  }
  const auto bt = static_cast<double>(b.total_time());
  c.total_time_ratio = bt != 0.0 ? static_cast<double>(a.total_time()) / bt : 0.0;
  return c;
}

TraceComparison compare_reference(const Trace& a, const Trace& b) {
  // Match key: identity of the instrumented action plus its per-processor
  // occurrence ordinal (the same statement can execute many times).
  using Key = std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t,
                         std::size_t>;
  std::map<Key, Tick> b_times;
  {
    std::map<std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t>,
             std::size_t>
        ordinal;
    for (const auto& e : b) {
      const auto base = std::make_tuple(e.proc, e.kind, e.id, e.object, e.payload);
      const std::size_t n = ordinal[base]++;
      b_times[std::tuple_cat(base, std::make_tuple(n))] = e.time;
    }
  }

  TraceComparison c;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::vector<double> abs_errors;
  {
    std::map<std::tuple<ProcId, EventKind, EventId, ObjectId, std::int64_t>,
             std::size_t>
        ordinal;
    for (const auto& e : a) {
      const auto base = std::make_tuple(e.proc, e.kind, e.id, e.object, e.payload);
      const std::size_t n = ordinal[base]++;
      const auto it = b_times.find(std::tuple_cat(base, std::make_tuple(n)));
      if (it == b_times.end()) {
        ++c.unmatched_a;
        continue;
      }
      ++c.matched_events;
      const auto err = static_cast<double>(e.time - it->second);
      abs_sum += std::abs(err);
      sq_sum += err * err;
      abs_errors.push_back(std::abs(err));
      c.max_abs_time_error =
          std::max(c.max_abs_time_error, static_cast<Tick>(std::llabs(
                                              static_cast<long long>(err))));
      b_times.erase(it);
    }
  }
  c.unmatched_b = b_times.size();
  if (c.matched_events > 0) {
    c.mean_abs_time_error = abs_sum / static_cast<double>(c.matched_events);
    c.rms_time_error = std::sqrt(sq_sum / static_cast<double>(c.matched_events));
    c.p50_abs_time_error = support::percentile(abs_errors, 0.5);
    c.p95_abs_time_error = support::percentile(std::move(abs_errors), 0.95);
  }
  const auto bt = static_cast<double>(b.total_time());
  c.total_time_ratio = bt != 0.0 ? static_cast<double>(a.total_time()) / bt : 0.0;
  return c;
}

}  // namespace perturb::trace
