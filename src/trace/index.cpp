#include "trace/index.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"
#include "support/parallel.hpp"

namespace perturb::trace {

namespace {

const std::vector<std::size_t>& empty_index_list() {
  static const std::vector<std::size_t> empty;
  return empty;
}

}  // namespace

TraceIndex::TraceIndex(const Trace& trace) : trace_(&trace) {
  build(nullptr);
}

TraceIndex::TraceIndex(const Trace& trace, support::TaskPool& pool)
    : trace_(&trace) {
  build(&pool);
}

TraceIndex::TraceIndex(ReferenceBuild, const Trace& trace) : trace_(&trace) {
  build_reference();
}

// Optimized builder.  Two independent scans (per-processor chains by
// counting sort; one structural pass for sync/loop/iteration tables), then
// three independent table sorts.  ProcId is 16-bit, so proc-indexed vectors
// replace the reference builder's per-event hash lookups; duplicate-advance
// detection moves from a hash probe per advance to one pass over the sorted
// advance table (entries after the first of an equal-key run, restored to
// trace order).  Every stage fills the same members with the same values as
// build_reference — the differential tests hold the two builders equal.
void TraceIndex::build(support::TaskPool* pool) {
  const Trace& trace = *trace_;
  const std::size_t n = trace.size();
  prev_on_proc_.assign(n, npos);
  fork_dep_.assign(n, npos);
  lock_dep_.assign(n, npos);
  sem_ordinal_.assign(n, npos);

  std::vector<std::pair<SyncKey, std::size_t>> advance_entries;
  std::vector<std::pair<AwaitKey, std::size_t>> await_entries;

  auto build_chains = [&] {
    std::vector<std::size_t> counts;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = trace[i].proc;
      if (counts.size() <= p) counts.resize(p + 1u, 0);
      ++counts[p];
    }
    proc_events_.resize(counts.size());
    for (std::size_t p = 0; p < counts.size(); ++p)
      proc_events_[p].reserve(counts[p]);
    std::vector<std::size_t> last(counts.size(), npos);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = trace[i].proc;
      prev_on_proc_[i] = last[p];
      last[p] = i;
      proc_events_[p].push_back(i);
    }
  };

  auto build_structure = [&] {
    std::unordered_map<ObjectId, std::size_t> last_release;
    std::unordered_map<ObjectId, std::size_t> sem_acquire_count;
    std::vector<std::size_t> open_iter;    // by proc; npos = none open
    std::vector<std::size_t> joined_loop;  // by proc; loop ordinal + 1
    std::size_t open_loop = npos;

    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = trace[i];

      // Fork tracking: inside a parallel-loop episode, a processor's first
      // event depends on the loop's spawn, not on that processor's previous
      // event (it was idle through the master's sequential section).
      if (e.kind == EventKind::kLoopBegin) {
        open_loop = loops_.size();
        loops_.push_back({i, npos, e.object, e.proc});
        if (joined_loop.size() <= e.proc) joined_loop.resize(e.proc + 1u, 0);
        joined_loop[e.proc] = open_loop + 1;  // master's chain covers it
      } else if (e.kind == EventKind::kLoopEnd) {
        if (open_loop != npos) loops_[open_loop].end_index = i;
        open_loop = npos;
      } else if (open_loop != npos) {
        if (joined_loop.size() <= e.proc) joined_loop.resize(e.proc + 1u, 0);
        if (joined_loop[e.proc] != open_loop + 1) {
          joined_loop[e.proc] = open_loop + 1;
          fork_dep_[i] = loops_[open_loop].begin_index;
        }
      }

      const SyncKey key{e.object, e.payload};
      switch (e.kind) {
        case EventKind::kAdvance:
          advance_entries.emplace_back(key, i);
          break;
        case EventKind::kAwaitBegin:
          await_entries.emplace_back(AwaitKey{key, e.proc}, i);
          break;
        case EventKind::kLockAcquire: {
          const auto lr = last_release.find(e.object);
          if (lr != last_release.end()) lock_dep_[i] = lr->second;
          break;
        }
        case EventKind::kLockRelease:
          last_release[e.object] = i;
          break;
        case EventKind::kSemAcquire:
          sem_ordinal_[i] = sem_acquire_count[e.object]++;
          break;
        case EventKind::kSemRelease:
          sem_releases_[e.object].push_back(i);
          break;
        case EventKind::kBarrierArrive:
        case EventKind::kBarrierDepart: {
          const auto [it, inserted] =
              barrier_slot_.insert({key, barriers_.size()});
          if (inserted) barriers_.push_back({key, {}, {}});
          BarrierEpisode& ep = barriers_[it->second];
          (e.kind == EventKind::kBarrierArrive ? ep.arrivals : ep.departs)
              .push_back(i);
          break;
        }
        case EventKind::kIterBegin: {
          if (open_iter.size() <= e.proc) open_iter.resize(e.proc + 1u, npos);
          open_iter[e.proc] = iters_.size();
          iters_.push_back({i, npos, e.payload, e.object, e.proc});
          break;
        }
        case EventKind::kIterEnd: {
          if (e.proc < open_iter.size() && open_iter[e.proc] != npos) {
            iters_[open_iter[e.proc]].end_index = i;
            open_iter[e.proc] = npos;
          }
          break;
        }
        default:
          break;
      }
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(2, [&](std::size_t task) {
      if (task == 0)
        build_chains();
      else
        build_structure();
    });
  } else {
    build_chains();
    build_structure();
  }

  finish_tables(advance_entries, await_entries, pool);
}

// Shared by build() and IncrementalTraceIndex::seal().
void TraceIndex::finish_tables(
    std::vector<std::pair<SyncKey, std::size_t>>& advance_entries,
    std::vector<std::pair<AwaitKey, std::size_t>>& await_entries,
    support::TaskPool* pool) {
  // Flat tables: sort by key then trace index, then split into parallel
  // key/index arrays so per-key occurrence lists are contiguous ascending
  // slices of the index array.
  const auto by_key_then_index = [](const auto& a, const auto& b) {
    if (!(a.first == b.first)) return a.first < b.first;
    return a.second < b.second;
  };

  auto finish_advances = [&] {
    std::sort(advance_entries.begin(), advance_entries.end(),
              by_key_then_index);
    advance_keys_.reserve(advance_entries.size());
    advance_idx_.reserve(advance_entries.size());
    for (const auto& [key, idx] : advance_entries) {
      advance_keys_.push_back(key);
      advance_idx_.push_back(idx);
    }
    // Duplicates: within an equal-key run every entry after the first
    // repeats an earlier advance; runs are ascending in trace index, so
    // sorting the collected indices restores trace order.
    for (std::size_t k = 1; k < advance_entries.size(); ++k)
      if (advance_entries[k].first == advance_entries[k - 1].first)
        duplicate_advances_.push_back(advance_entries[k].second);
    std::sort(duplicate_advances_.begin(), duplicate_advances_.end());
  };

  auto finish_awaits = [&] {
    std::sort(await_entries.begin(), await_entries.end(), by_key_then_index);
    await_keys_.reserve(await_entries.size());
    await_idx_.reserve(await_entries.size());
    for (const auto& [key, idx] : await_entries) {
      await_keys_.push_back(key);
      await_idx_.push_back(idx);
    }
  };

  auto finish_barriers = [&] {
    // Barrier episodes in deterministic (object, payload) order.
    std::sort(barriers_.begin(), barriers_.end(),
              [](const BarrierEpisode& a, const BarrierEpisode& b) {
                return a.key < b.key;
              });
    barrier_slot_.clear();
    for (std::size_t s = 0; s < barriers_.size(); ++s)
      barrier_slot_[barriers_[s].key] = s;
  };

  if (pool != nullptr) {
    pool->parallel_for(3, [&](std::size_t task) {
      if (task == 0)
        finish_advances();
      else if (task == 1)
        finish_awaits();
      else
        finish_barriers();
    });
  } else {
    finish_advances();
    finish_awaits();
    finish_barriers();
  }
}

// Reference builder: the original single-pass construction, kept verbatim
// as the executable specification the optimized build() is tested against.
void TraceIndex::build_reference() {
  const Trace& trace = *trace_;
  const std::size_t n = trace.size();
  prev_on_proc_.assign(n, npos);
  fork_dep_.assign(n, npos);
  lock_dep_.assign(n, npos);
  sem_ordinal_.assign(n, npos);

  std::vector<std::pair<SyncKey, std::size_t>> advance_entries;
  std::vector<std::pair<AwaitKey, std::size_t>> await_entries;
  std::unordered_map<ProcId, std::size_t> last_on_proc;
  std::unordered_map<ObjectId, std::size_t> last_release;
  std::unordered_map<ObjectId, std::size_t> sem_acquire_count;
  std::unordered_map<ProcId, std::size_t> open_iter;
  std::unordered_map<SyncKey, std::size_t, SyncKeyHash> first_advance_of;
  std::size_t open_loop = npos;
  std::set<ProcId> joined;

  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = trace[i];

    // Fork tracking: inside a parallel-loop episode, a processor's first
    // event depends on the loop's spawn, not on that processor's previous
    // event (it was idle through the master's sequential section).
    if (e.kind == EventKind::kLoopBegin) {
      open_loop = loops_.size();
      loops_.push_back({i, npos, e.object, e.proc});
      joined.clear();
      joined.insert(e.proc);  // the master's own chain already covers it
    } else if (e.kind == EventKind::kLoopEnd) {
      if (open_loop != npos) loops_[open_loop].end_index = i;
      open_loop = npos;
    } else if (open_loop != npos && joined.insert(e.proc).second) {
      fork_dep_[i] = loops_[open_loop].begin_index;
    }

    // Per-processor chain.
    const auto lp = last_on_proc.find(e.proc);
    if (lp != last_on_proc.end()) prev_on_proc_[i] = lp->second;
    last_on_proc[e.proc] = i;
    if (proc_events_.size() <= e.proc) proc_events_.resize(e.proc + 1u);
    proc_events_[e.proc].push_back(i);

    const SyncKey key{e.object, e.payload};
    switch (e.kind) {
      case EventKind::kAdvance:
        if (!first_advance_of.insert({key, i}).second)
          duplicate_advances_.push_back(i);
        advance_entries.emplace_back(key, i);
        break;
      case EventKind::kAwaitBegin:
        await_entries.emplace_back(AwaitKey{key, e.proc}, i);
        break;
      case EventKind::kLockAcquire: {
        const auto lr = last_release.find(e.object);
        if (lr != last_release.end()) lock_dep_[i] = lr->second;
        break;
      }
      case EventKind::kLockRelease:
        last_release[e.object] = i;
        break;
      case EventKind::kSemAcquire:
        sem_ordinal_[i] = sem_acquire_count[e.object]++;
        break;
      case EventKind::kSemRelease:
        sem_releases_[e.object].push_back(i);
        break;
      case EventKind::kBarrierArrive:
      case EventKind::kBarrierDepart: {
        const auto [it, inserted] = barrier_slot_.insert({key, barriers_.size()});
        if (inserted) barriers_.push_back({key, {}, {}});
        BarrierEpisode& ep = barriers_[it->second];
        (e.kind == EventKind::kBarrierArrive ? ep.arrivals : ep.departs)
            .push_back(i);
        break;
      }
      case EventKind::kIterBegin: {
        open_iter[e.proc] = iters_.size();
        iters_.push_back({i, npos, e.payload, e.object, e.proc});
        break;
      }
      case EventKind::kIterEnd: {
        const auto oi = open_iter.find(e.proc);
        if (oi != open_iter.end() && oi->second != npos) {
          iters_[oi->second].end_index = i;
          oi->second = npos;
        }
        break;
      }
      default:
        break;
    }
  }

  // Flat tables: sort by key then trace index, then split into parallel
  // key/index arrays so per-key occurrence lists are contiguous ascending
  // slices of the index array.
  const auto by_key_then_index = [](const auto& a, const auto& b) {
    if (!(a.first == b.first)) return a.first < b.first;
    return a.second < b.second;
  };
  std::sort(advance_entries.begin(), advance_entries.end(), by_key_then_index);
  std::sort(await_entries.begin(), await_entries.end(), by_key_then_index);
  advance_keys_.reserve(advance_entries.size());
  advance_idx_.reserve(advance_entries.size());
  for (const auto& [key, idx] : advance_entries) {
    advance_keys_.push_back(key);
    advance_idx_.push_back(idx);
  }
  await_keys_.reserve(await_entries.size());
  await_idx_.reserve(await_entries.size());
  for (const auto& [key, idx] : await_entries) {
    await_keys_.push_back(key);
    await_idx_.push_back(idx);
  }

  // Barrier episodes in deterministic (object, payload) order.
  std::sort(barriers_.begin(), barriers_.end(),
            [](const BarrierEpisode& a, const BarrierEpisode& b) {
              return a.key < b.key;
            });
  barrier_slot_.clear();
  for (std::size_t s = 0; s < barriers_.size(); ++s)
    barrier_slot_[barriers_[s].key] = s;
}

const std::vector<std::size_t>& TraceIndex::events_of(ProcId proc) const {
  if (proc >= proc_events_.size()) return empty_index_list();
  return proc_events_[proc];
}

TraceIndex::IndexRange TraceIndex::await_begins(SyncKey key,
                                                ProcId proc) const {
  const AwaitKey ak{key, proc};
  const auto lo = std::lower_bound(await_keys_.begin(), await_keys_.end(), ak);
  const auto hi = std::upper_bound(lo, await_keys_.end(), ak);
  const std::size_t* base = await_idx_.data();
  return {base + (lo - await_keys_.begin()),
          base + (hi - await_keys_.begin())};
}

std::size_t TraceIndex::last_await_begin(SyncKey key, ProcId proc) const {
  const IndexRange r = await_begins(key, proc);
  return r.empty() ? npos : r.back();
}

std::size_t TraceIndex::last_await_begin_before(SyncKey key, ProcId proc,
                                                std::size_t i) const {
  const IndexRange r = await_begins(key, proc);
  const auto it = std::lower_bound(r.begin(), r.end(), i);
  return it == r.begin() ? npos : *(it - 1);
}

const std::vector<std::size_t>& TraceIndex::sem_releases(
    ObjectId object) const {
  const auto it = sem_releases_.find(object);
  return it == sem_releases_.end() ? empty_index_list() : it->second;
}

const TraceIndex::BarrierEpisode* TraceIndex::barrier_episode(
    ObjectId object, std::int64_t payload) const {
  const auto it = barrier_slot_.find(SyncKey{object, payload});
  return it == barrier_slot_.end() ? nullptr : &barriers_[it->second];
}

// Per-event transition of build()'s two scans (chains + structure), with the
// scan locals held as members so the state survives between chunks.
void IncrementalTraceIndex::append(const Event& e) {
  TraceIndex& x = index_;
  const std::size_t i = x.prev_on_proc_.size();
  constexpr std::size_t npos = TraceIndex::npos;
  x.prev_on_proc_.push_back(npos);
  x.fork_dep_.push_back(npos);
  x.lock_dep_.push_back(npos);
  x.sem_ordinal_.push_back(npos);

  // Per-processor chain.
  const std::size_t p = e.proc;
  if (last_on_proc_.size() <= p) last_on_proc_.resize(p + 1u, npos);
  if (x.proc_events_.size() <= p) x.proc_events_.resize(p + 1u);
  x.prev_on_proc_[i] = last_on_proc_[p];
  last_on_proc_[p] = i;
  x.proc_events_[p].push_back(i);

  // Fork tracking: inside a parallel-loop episode, a processor's first
  // event depends on the loop's spawn, not on that processor's previous
  // event (it was idle through the master's sequential section).
  if (e.kind == EventKind::kLoopBegin) {
    open_loop_ = x.loops_.size();
    x.loops_.push_back({i, npos, e.object, e.proc});
    if (joined_loop_.size() <= e.proc) joined_loop_.resize(e.proc + 1u, 0);
    joined_loop_[e.proc] = open_loop_ + 1;  // master's chain covers it
  } else if (e.kind == EventKind::kLoopEnd) {
    if (open_loop_ != npos) x.loops_[open_loop_].end_index = i;
    open_loop_ = npos;
  } else if (open_loop_ != npos) {
    if (joined_loop_.size() <= e.proc) joined_loop_.resize(e.proc + 1u, 0);
    if (joined_loop_[e.proc] != open_loop_ + 1) {
      joined_loop_[e.proc] = open_loop_ + 1;
      x.fork_dep_[i] = x.loops_[open_loop_].begin_index;
    }
  }

  const SyncKey key{e.object, e.payload};
  switch (e.kind) {
    case EventKind::kAdvance:
      advance_entries_.emplace_back(key, i);
      break;
    case EventKind::kAwaitBegin:
      await_entries_.emplace_back(TraceIndex::AwaitKey{key, e.proc}, i);
      break;
    case EventKind::kLockAcquire: {
      const auto lr = last_release_.find(e.object);
      if (lr != last_release_.end()) x.lock_dep_[i] = lr->second;
      break;
    }
    case EventKind::kLockRelease:
      last_release_[e.object] = i;
      break;
    case EventKind::kSemAcquire:
      x.sem_ordinal_[i] = sem_acquire_count_[e.object]++;
      break;
    case EventKind::kSemRelease:
      x.sem_releases_[e.object].push_back(i);
      break;
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierDepart: {
      const auto [it, inserted] =
          x.barrier_slot_.insert({key, x.barriers_.size()});
      if (inserted) x.barriers_.push_back({key, {}, {}});
      TraceIndex::BarrierEpisode& ep = x.barriers_[it->second];
      (e.kind == EventKind::kBarrierArrive ? ep.arrivals : ep.departs)
          .push_back(i);
      break;
    }
    case EventKind::kIterBegin: {
      if (open_iter_.size() <= e.proc) open_iter_.resize(e.proc + 1u, npos);
      open_iter_[e.proc] = x.iters_.size();
      x.iters_.push_back({i, npos, e.payload, e.object, e.proc});
      break;
    }
    case EventKind::kIterEnd: {
      if (e.proc < open_iter_.size() && open_iter_[e.proc] != npos) {
        x.iters_[open_iter_[e.proc]].end_index = i;
        open_iter_[e.proc] = npos;
      }
      break;
    }
    default:
      break;
  }
}

TraceIndex IncrementalTraceIndex::seal(const Trace& trace) && {
  PERTURB_CHECK_MSG(trace.size() == size(),
                    "sealed trace does not match the appended events");
  index_.trace_ = &trace;
  index_.finish_tables(advance_entries_, await_entries_, nullptr);
  return std::move(index_);
}

}  // namespace perturb::trace
