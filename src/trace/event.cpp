#include "trace/event.hpp"

#include "support/check.hpp"

namespace perturb::trace {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kStmtEnter: return "stmt_enter";
    case EventKind::kStmtExit: return "stmt_exit";
    case EventKind::kAdvance: return "advance";
    case EventKind::kAwaitBegin: return "awaitB";
    case EventKind::kAwaitEnd: return "awaitE";
    case EventKind::kLockAcquire: return "lock_acq";
    case EventKind::kLockRelease: return "lock_rel";
    case EventKind::kBarrierArrive: return "bar_arrive";
    case EventKind::kBarrierDepart: return "bar_depart";
    case EventKind::kLoopBegin: return "loop_begin";
    case EventKind::kLoopEnd: return "loop_end";
    case EventKind::kIterBegin: return "iter_begin";
    case EventKind::kIterEnd: return "iter_end";
    case EventKind::kProgramBegin: return "prog_begin";
    case EventKind::kProgramEnd: return "prog_end";
    case EventKind::kUser: return "user";
    case EventKind::kSemAcquire: return "sem_acq";
    case EventKind::kSemRelease: return "sem_rel";
  }
  return "unknown";
}

EventKind event_kind_from_name(const std::string& name) {
  for (std::uint8_t i = 0; i < kNumEventKinds; ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == event_kind_name(k)) return k;
  }
  PERTURB_CHECK_MSG(false, "unknown event kind name: " + name);
  return EventKind::kUser;  // unreachable
}

}  // namespace perturb::trace
