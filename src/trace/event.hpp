// The logical event model from §2 of the paper.
//
// A logical event trace is a time-ordered sequence of events e_i =
// {t(e_i), eid_i}: the execution of instrumented statements plus the
// synchronization operations (advance, awaitB/awaitE, locks, barriers) that
// event-based perturbation analysis needs to enforce dependency semantics
// (§4.2.2).  Every synchronization event carries the object it acted on and a
// payload (the iteration index) that uniquely pairs advance and await events.
#pragma once

#include <cstdint>
#include <string>

namespace perturb::trace {

/// Time in ticks.  The simulator interprets a tick as one machine cycle; the
/// real-threads runtime uses nanoseconds.  Signed so that analysis
/// intermediate values may go (transiently) negative.
using Tick = std::int64_t;

/// Identifier of the instrumented site (statement) that produced an event.
using EventId = std::uint32_t;

/// Identifier of the synchronization object (sync variable, lock, barrier,
/// or loop) an event refers to; 0 for plain computation events.
using ObjectId = std::uint32_t;

/// Processor (simulator) or worker-thread (runtime) index.
using ProcId = std::uint16_t;

enum class EventKind : std::uint8_t {
  kStmtEnter,      ///< statement began executing
  kStmtExit,       ///< statement finished executing
  kAdvance,        ///< advance(A, i) completed; payload = i
  kAwaitBegin,     ///< await(A, i) began; payload = i
  kAwaitEnd,       ///< await(A, i) satisfied; payload = i
  kLockAcquire,    ///< lock acquired (critical-section entry)
  kLockRelease,    ///< lock released (critical-section exit)
  kBarrierArrive,  ///< processor arrived at barrier
  kBarrierDepart,  ///< processor released from barrier
  kLoopBegin,      ///< parallel loop began (on spawning processor)
  kLoopEnd,        ///< parallel loop ended (after the closing barrier)
  kIterBegin,      ///< loop iteration began; payload = iteration index
  kIterEnd,        ///< loop iteration ended; payload = iteration index
  kProgramBegin,   ///< first event of a run
  kProgramEnd,     ///< last event of a run
  kUser,           ///< user-defined marker
  kSemAcquire,     ///< counting-semaphore P() completed
  kSemRelease,     ///< counting-semaphore V() completed
};

constexpr std::uint8_t kNumEventKinds = 18;

/// Human-readable name for an event kind ("advance", "awaitB", ...).
const char* event_kind_name(EventKind kind) noexcept;

/// Parses the result of event_kind_name; throws CheckError on unknown names.
EventKind event_kind_from_name(const std::string& name);

/// True for kinds that participate in cross-processor dependencies and are
/// therefore treated specially by event-based perturbation analysis.
constexpr bool is_sync_kind(EventKind k) noexcept {
  switch (k) {
    case EventKind::kAdvance:
    case EventKind::kAwaitBegin:
    case EventKind::kAwaitEnd:
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierDepart:
    case EventKind::kSemAcquire:
    case EventKind::kSemRelease:
      return true;
    default:
      return false;
  }
}

struct Event {
  Tick time = 0;             ///< measured (or true) occurrence time
  std::int64_t payload = 0;  ///< iteration index for sync pairing; 0 otherwise
  EventId id = 0;            ///< instrumented-site identifier
  ObjectId object = 0;       ///< sync object the event refers to
  ProcId proc = 0;
  EventKind kind = EventKind::kUser;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Key that uniquely pairs an advance with its await (§4.2.2): the
/// synchronization variable plus the advanced/awaited index.
struct SyncKey {
  ObjectId object = 0;
  std::int64_t index = 0;

  friend bool operator==(const SyncKey&, const SyncKey&) = default;
  friend bool operator<(const SyncKey& a, const SyncKey& b) {
    if (a.object != b.object) return a.object < b.object;
    return a.index < b.index;
  }
};

struct SyncKeyHash {
  std::size_t operator()(const SyncKey& k) const noexcept {
    const std::uint64_t a = (static_cast<std::uint64_t>(k.object) << 32) ^
                            static_cast<std::uint64_t>(k.index);
    // SplitMix-style mix.
    std::uint64_t x = a + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace perturb::trace
