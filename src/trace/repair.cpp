#include "trace/repair.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

const char* repair_strategy_name(RepairStrategy strategy) noexcept {
  switch (strategy) {
    case RepairStrategy::kClampProcessorTime: return "clamp-proc-time";
    case RepairStrategy::kRaiseAwaitEnd: return "raise-awaitE";
    case RepairStrategy::kDropOrphanAwaitEnd: return "drop-orphan-awaitE";
    case RepairStrategy::kSynthesizeAwaitBegin: return "synthesize-awaitB";
    case RepairStrategy::kDropDuplicateAdvance: return "drop-duplicate-advance";
    case RepairStrategy::kRaiseLockAcquire: return "raise-lock-acquire";
    case RepairStrategy::kSynthesizeLockRelease: return "synthesize-lock-release";
    case RepairStrategy::kReassignLockRelease: return "reassign-lock-release";
    case RepairStrategy::kDropLockRelease: return "drop-lock-release";
    case RepairStrategy::kRaiseBarrierDepart: return "raise-barrier-depart";
    case RepairStrategy::kSynthesizeBarrierArrive: return "synthesize-barrier-arrive";
    case RepairStrategy::kSynthesizeBarrierDepart: return "synthesize-barrier-depart";
    case RepairStrategy::kExciseBarrierEpisode: return "excise-barrier-episode";
    case RepairStrategy::kDropSemaphoreRelease: return "drop-semaphore-release";
    case RepairStrategy::kSynthesizeSemRelease: return "synthesize-semaphore-release";
    case RepairStrategy::kDropEvent: return "drop-event";
  }
  return "unknown";
}

const char* repair_severity_name(RepairSeverity severity) noexcept {
  switch (severity) {
    case RepairSeverity::kClean: return "clean";
    case RepairSeverity::kCosmetic: return "cosmetic";
    case RepairSeverity::kLossy: return "lossy";
    case RepairSeverity::kUnsalvageable: return "unsalvageable";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kMaxRecordedActions = 50000;
constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

/// Strategies that only nudge timestamps or remove exact semantic
/// redundancy keep the trace's information content: cosmetic.  Everything
/// else invents or discards data: lossy.
RepairSeverity strategy_severity(RepairStrategy s) noexcept {
  switch (s) {
    case RepairStrategy::kClampProcessorTime:
    case RepairStrategy::kRaiseAwaitEnd:
    case RepairStrategy::kRaiseLockAcquire:
    case RepairStrategy::kRaiseBarrierDepart:
    case RepairStrategy::kDropDuplicateAdvance:
      return RepairSeverity::kCosmetic;
    default:
      return RepairSeverity::kLossy;
  }
}

bool strategy_drops(RepairStrategy s) noexcept {
  switch (s) {
    case RepairStrategy::kDropOrphanAwaitEnd:
    case RepairStrategy::kDropDuplicateAdvance:
    case RepairStrategy::kDropLockRelease:
    case RepairStrategy::kExciseBarrierEpisode:
    case RepairStrategy::kDropSemaphoreRelease:
    case RepairStrategy::kDropEvent:
      return true;
    default:
      return false;
  }
}

bool strategy_synthesizes(RepairStrategy s) noexcept {
  switch (s) {
    case RepairStrategy::kSynthesizeAwaitBegin:
    case RepairStrategy::kSynthesizeLockRelease:
    case RepairStrategy::kSynthesizeBarrierArrive:
    case RepairStrategy::kSynthesizeBarrierDepart:
    case RepairStrategy::kSynthesizeSemRelease:
      return true;
    default:
      return false;
  }
}

Event make_ev(EventKind kind, Tick time, ProcId proc, ObjectId object,
              std::int64_t payload) {
  Event e;
  e.kind = kind;
  e.time = time;
  e.proc = proc;
  e.object = object;
  e.payload = payload;
  e.id = 0;  // synthesized events carry no instrumented site
  return e;
}

/// Batched structural edits against a fixed snapshot of event indices:
/// drops, and insertions keyed by the original index they go before
/// (index == size() appends at the end).
struct Edits {
  std::vector<char> drop;
  std::map<std::size_t, std::vector<Event>> insert_before;
  bool any = false;

  explicit Edits(std::size_t n) : drop(n, 0) {}

  void drop_event(std::size_t i) {
    drop[i] = 1;
    any = true;
  }
  void insert(std::size_t before_index, const Event& e) {
    insert_before[before_index].push_back(e);
    any = true;
  }
};

void apply_edits(Trace& t, const Edits& ed) {
  if (!ed.any) return;
  auto& ev = t.events();
  std::vector<Event> out;
  out.reserve(ev.size());
  for (std::size_t i = 0; i <= ev.size(); ++i) {
    const auto it = ed.insert_before.find(i);
    if (it != ed.insert_before.end())
      out.insert(out.end(), it->second.begin(), it->second.end());
    if (i < ev.size() && !ed.drop[i]) out.push_back(ev[i]);
  }
  ev = std::move(out);
}

class Repairer {
 public:
  Repairer(const Trace& trace, const RepairOptions& options)
      : work_(trace), opt_(options) {}

  RepairResult run() {
    ValidateOptions vopt;
    vopt.sync_slack = opt_.sync_slack;
    bool escalated = false;
    auto violations = validate(work_, vopt);
    while (!violations.empty() && manifest_.passes < opt_.max_passes) {
      ++manifest_.passes;
      bool edited = apply_pass(violations);
      if (!edited && opt_.aggressive && !escalated) {
        escalated = true;
        edited = escalate(violations);
      }
      if (!edited) break;  // no strategy makes progress; stop re-validating
      violations = validate(work_, vopt);
    }
    if (!violations.empty() && opt_.aggressive && !escalated) {
      // Pass budget ran out before conservative repair converged: escalate
      // once, then give the cheap clamps a final chance to settle times.
      ++manifest_.passes;
      if (escalate(violations)) {
        violations = validate(work_, vopt);
        if (!violations.empty()) {
          apply_pass(violations);
          violations = validate(work_, vopt);
        }
      }
    }
    manifest_.remaining = violations;
    if (!manifest_.remaining.empty())
      manifest_.severity = RepairSeverity::kUnsalvageable;
    else
      manifest_.severity = worst_;
    return {std::move(work_), std::move(manifest_)};
  }

 private:
  void record(ViolationKind kind, RepairStrategy strategy, std::size_t index,
              Tick ticks, std::string detail) {
    worst_ = std::max(worst_, strategy_severity(strategy));
    if (strategy_drops(strategy)) {
      ++manifest_.events_dropped;
    } else if (strategy_synthesizes(strategy)) {
      ++manifest_.events_synthesized;
    } else {
      ++manifest_.events_adjusted;
      manifest_.total_ticks_adjusted += ticks;
    }
    if (manifest_.actions.size() < kMaxRecordedActions)
      manifest_.actions.push_back(
          {kind, strategy, index, ticks, std::move(detail)});
    else
      manifest_.actions_truncated = true;
  }

  bool apply_pass(const std::vector<Violation>& violations) {
    bool has[10] = {};
    for (const auto& v : violations) has[static_cast<int>(v.kind)] = true;
    auto present = [&](ViolationKind k) { return has[static_cast<int>(k)]; };

    bool edited = false;
    // Structural fixes first (they create/remove events), then timing
    // clamps; anything a fix knocks loose is caught by the next pass.
    if (present(ViolationKind::kDuplicateAdvance))
      edited |= fix_duplicate_advances();
    if (present(ViolationKind::kAwaitEndWithoutAdvance))
      edited |= fix_orphan_await_ends();
    if (present(ViolationKind::kAwaitEndWithoutBegin))
      edited |= fix_missing_await_begins();
    if (present(ViolationKind::kLockOverlap) ||
        present(ViolationKind::kLockUnbalanced))
      edited |= fix_locks();
    if (present(ViolationKind::kSemaphoreUnbalanced))
      edited |= fix_semaphores();
    if (present(ViolationKind::kBarrierOrder) ||
        present(ViolationKind::kBarrierIncomplete))
      edited |= fix_barriers();
    if (present(ViolationKind::kAwaitEndBeforeAdvance))
      edited |= fix_await_before_advance();
    if (present(ViolationKind::kNonMonotoneProcessorTime))
      edited |= clamp_processor_times();
    return edited;
  }

  bool fix_duplicate_advances() {
    Edits ed(work_.size());
    std::unordered_set<SyncKey, SyncKeyHash> seen;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const Event& e = work_[i];
      if (e.kind != EventKind::kAdvance) continue;
      if (!seen.insert(SyncKey{e.object, e.payload}).second) {
        ed.drop_event(i);
        record(ViolationKind::kDuplicateAdvance,
               RepairStrategy::kDropDuplicateAdvance, i, 0,
               strf("advance(%u, %lld) repeated", unsigned(e.object),
                    static_cast<long long>(e.payload)));
      }
    }
    apply_edits(work_, ed);
    return ed.any;
  }

  bool fix_orphan_await_ends() {
    std::unordered_set<SyncKey, SyncKeyHash> advanced;
    for (const auto& e : work_)
      if (e.kind == EventKind::kAdvance)
        advanced.insert(SyncKey{e.object, e.payload});
    Edits ed(work_.size());
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const Event& e = work_[i];
      if (e.kind != EventKind::kAwaitEnd) continue;
      if (advanced.count(SyncKey{e.object, e.payload})) continue;
      ed.drop_event(i);
      record(ViolationKind::kAwaitEndWithoutAdvance,
             RepairStrategy::kDropOrphanAwaitEnd, i, 0,
             strf("awaitE(%u, %lld) on proc %u has no advance",
                  unsigned(e.object), static_cast<long long>(e.payload),
                  unsigned(e.proc)));
    }
    apply_edits(work_, ed);
    return ed.any;
  }

  bool fix_missing_await_begins() {
    // Mirrors the validator's forward scan: an awaitE is satisfied by any
    // awaitB with the same (key, proc) earlier in trace order.
    Edits ed(work_.size());
    std::set<std::pair<SyncKey, ProcId>> begun;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const Event& e = work_[i];
      const SyncKey key{e.object, e.payload};
      if (e.kind == EventKind::kAwaitBegin) {
        begun.insert({key, e.proc});
      } else if (e.kind == EventKind::kAwaitEnd) {
        if (begun.insert({key, e.proc}).second) {
          ed.insert(i, make_ev(EventKind::kAwaitBegin, e.time, e.proc,
                               e.object, e.payload));
          record(ViolationKind::kAwaitEndWithoutBegin,
                 RepairStrategy::kSynthesizeAwaitBegin, i, 0,
                 strf("awaitE(%u, %lld) on proc %u lacked its awaitB",
                      unsigned(e.object), static_cast<long long>(e.payload),
                      unsigned(e.proc)));
        }
      }
    }
    apply_edits(work_, ed);
    return ed.any;
  }

  bool fix_await_before_advance() {
    std::unordered_map<SyncKey, Tick, SyncKeyHash> advance_time;
    for (const auto& e : work_)
      if (e.kind == EventKind::kAdvance)
        advance_time.insert({SyncKey{e.object, e.payload}, e.time});
    bool changed = false;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      Event& e = work_[i];
      if (e.kind != EventKind::kAwaitEnd) continue;
      const auto it = advance_time.find(SyncKey{e.object, e.payload});
      if (it == advance_time.end()) continue;
      if (e.time + opt_.sync_slack < it->second) {
        const Tick delta = it->second - e.time;
        record(ViolationKind::kAwaitEndBeforeAdvance,
               RepairStrategy::kRaiseAwaitEnd, i, delta,
               strf("awaitE(%u, %lld) raised %lld ticks to its advance",
                    unsigned(e.object), static_cast<long long>(e.payload),
                    static_cast<long long>(delta)));
        e.time = it->second;
        changed = true;
      }
    }
    return changed;
  }

  bool fix_locks() {
    struct LockState {
      bool held = false;
      ProcId holder = 0;
      Tick release_time = 0;
      bool has_prev_release = false;
    };
    std::unordered_map<ObjectId, LockState> locks;
    Edits ed(work_.size());
    bool changed = false;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      Event& e = work_[i];
      if (e.kind == EventKind::kLockAcquire) {
        auto& st = locks[e.object];
        if (st.held) {
          ed.insert(i, make_ev(EventKind::kLockRelease, e.time, st.holder,
                               e.object, 0));
          record(ViolationKind::kLockUnbalanced,
                 RepairStrategy::kSynthesizeLockRelease, i, 0,
                 strf("lock %u: closed section left open by proc %u",
                      unsigned(e.object), unsigned(st.holder)));
          st.release_time = e.time;
          st.has_prev_release = true;
        } else if (st.has_prev_release &&
                   e.time + opt_.sync_slack < st.release_time) {
          const Tick delta = st.release_time - e.time;
          record(ViolationKind::kLockOverlap,
                 RepairStrategy::kRaiseLockAcquire, i, delta,
                 strf("lock %u: acquire raised %lld ticks past previous "
                      "release",
                      unsigned(e.object), static_cast<long long>(delta)));
          e.time = st.release_time;
          changed = true;
        }
        st.held = true;
        st.holder = e.proc;
      } else if (e.kind == EventKind::kLockRelease) {
        auto& st = locks[e.object];
        if (!st.held) {
          ed.drop_event(i);
          record(ViolationKind::kLockUnbalanced,
                 RepairStrategy::kDropLockRelease, i, 0,
                 strf("lock %u: release by proc %u had no acquire",
                      unsigned(e.object), unsigned(e.proc)));
          continue;
        }
        if (st.holder != e.proc) {
          record(ViolationKind::kLockUnbalanced,
                 RepairStrategy::kReassignLockRelease, i, 0,
                 strf("lock %u: release re-attributed from proc %u to "
                      "holder %u",
                      unsigned(e.object), unsigned(e.proc),
                      unsigned(st.holder)));
          e.proc = st.holder;
          changed = true;
        }
        st.held = false;
        st.release_time = e.time;
        st.has_prev_release = true;
      }
    }
    const Tick end = work_.end_time();
    for (const auto& [obj, st] : locks) {
      if (!st.held) continue;
      ed.insert(work_.size(),
                make_ev(EventKind::kLockRelease, end, st.holder, obj, 0));
      record(ViolationKind::kLockUnbalanced,
             RepairStrategy::kSynthesizeLockRelease, kNoEvent, 0,
             strf("lock %u: released at trace end for proc %u", unsigned(obj),
                  unsigned(st.holder)));
    }
    apply_edits(work_, ed);
    return changed || ed.any;
  }

  bool fix_semaphores() {
    std::map<std::pair<ObjectId, ProcId>, std::int64_t> held;
    Edits ed(work_.size());
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const Event& e = work_[i];
      if (e.kind == EventKind::kSemAcquire) {
        ++held[{e.object, e.proc}];
      } else if (e.kind == EventKind::kSemRelease) {
        auto& h = held[{e.object, e.proc}];
        if (h <= 0) {
          ed.drop_event(i);
          record(ViolationKind::kSemaphoreUnbalanced,
                 RepairStrategy::kDropSemaphoreRelease, i, 0,
                 strf("semaphore %u: V() by proc %u had no held P()",
                      unsigned(e.object), unsigned(e.proc)));
        } else {
          --h;
        }
      }
    }
    const Tick end = work_.end_time();
    for (const auto& [key, count] : held) {
      for (std::int64_t c = 0; c < count; ++c) {
        ed.insert(work_.size(), make_ev(EventKind::kSemRelease, end,
                                        key.second, key.first, 0));
        record(ViolationKind::kSemaphoreUnbalanced,
               RepairStrategy::kSynthesizeSemRelease, kNoEvent, 0,
               strf("semaphore %u: closing V() for proc %u at trace end",
                    unsigned(key.first), unsigned(key.second)));
      }
    }
    apply_edits(work_, ed);
    return ed.any;
  }

  bool fix_barriers() {
    struct Episode {
      std::vector<std::size_t> arrives, departs;
    };
    std::map<std::pair<ObjectId, std::int64_t>, Episode> episodes;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const Event& e = work_[i];
      if (e.kind == EventKind::kBarrierArrive)
        episodes[{e.object, e.payload}].arrives.push_back(i);
      else if (e.kind == EventKind::kBarrierDepart)
        episodes[{e.object, e.payload}].departs.push_back(i);
    }
    Edits ed(work_.size());
    bool changed = false;
    for (const auto& [key, ep] : episodes) {
      if (ep.arrives.size() != ep.departs.size()) {
        if (opt_.aggressive) {
          for (const auto i : ep.arrives) ed.drop_event(i);
          for (const auto i : ep.departs) ed.drop_event(i);
          record(ViolationKind::kBarrierIncomplete,
                 RepairStrategy::kExciseBarrierEpisode,
                 ep.arrives.empty() ? ep.departs.front() : ep.arrives.front(),
                 0,
                 strf("barrier %u episode %lld: excised %zu arrivals and "
                      "%zu departures",
                      unsigned(key.first),
                      static_cast<long long>(key.second), ep.arrives.size(),
                      ep.departs.size()));
          // Counters track every dropped event, not just the one action.
          manifest_.events_dropped += ep.arrives.size() + ep.departs.size() - 1;
          changed = true;
          continue;
        }
        changed |= complete_episode(key.first, key.second, ep.arrives,
                                    ep.departs, ed);
        continue;
      }
      changed |= reorder_episode(ep.arrives, ep.departs, ed);
    }
    apply_edits(work_, ed);
    return changed;
  }

  /// Balances an episode's arrival/departure counts by synthesizing the
  /// missing side for the processors that lack it.
  bool complete_episode(ObjectId object, std::int64_t episode,
                        const std::vector<std::size_t>& arrives,
                        const std::vector<std::size_t>& departs, Edits& ed) {
    std::multiset<ProcId> need;
    auto remove_one = [&need](ProcId proc) {
      const auto it = need.find(proc);
      if (it != need.end()) need.erase(it);
    };
    if (departs.size() < arrives.size()) {
      for (const auto i : arrives) need.insert(work_[i].proc);
      for (const auto i : departs) remove_one(work_[i].proc);
      Tick t = std::numeric_limits<Tick>::min();
      for (const auto i : arrives) t = std::max(t, work_[i].time);
      for (const auto i : departs) t = std::max(t, work_[i].time);
      const std::size_t anchor =
          std::max(arrives.empty() ? std::size_t{0} : arrives.back(),
                   departs.empty() ? std::size_t{0} : departs.back()) +
          1;
      for (const auto proc : need) {
        ed.insert(anchor,
                  make_ev(EventKind::kBarrierDepart, t, proc, object, episode));
        record(ViolationKind::kBarrierIncomplete,
               RepairStrategy::kSynthesizeBarrierDepart, kNoEvent, 0,
               strf("barrier %u episode %lld: departure added for proc %u",
                    unsigned(object), static_cast<long long>(episode),
                    unsigned(proc)));
      }
    } else {
      for (const auto i : departs) need.insert(work_[i].proc);
      for (const auto i : arrives) remove_one(work_[i].proc);
      Tick t = std::numeric_limits<Tick>::max();
      for (const auto i : departs) t = std::min(t, work_[i].time);
      const std::size_t anchor = departs.front();
      for (const auto proc : need) {
        ed.insert(anchor,
                  make_ev(EventKind::kBarrierArrive, t, proc, object, episode));
        record(ViolationKind::kBarrierIncomplete,
               RepairStrategy::kSynthesizeBarrierArrive, kNoEvent, 0,
               strf("barrier %u episode %lld: arrival added for proc %u",
                    unsigned(object), static_cast<long long>(episode),
                    unsigned(proc)));
      }
    }
    return !need.empty();
  }

  /// Fixes kBarrierOrder within a balanced episode: departs recorded before
  /// a later arrive are moved after the last arrive, and any depart earlier
  /// than the arrivals it should follow is raised to their time.
  bool reorder_episode(const std::vector<std::size_t>& arrives,
                       const std::vector<std::size_t>& departs, Edits& ed) {
    if (arrives.empty() || departs.empty()) return false;
    bool changed = false;
    const std::size_t last_arrive = arrives.back();
    Tick max_arrive = std::numeric_limits<Tick>::min();
    for (const auto i : arrives) max_arrive = std::max(max_arrive, work_[i].time);

    // Running "last arrive seen so far" per trace position, mirroring the
    // validator's scan.
    std::size_t ai = 0;
    Tick running_arrive = std::numeric_limits<Tick>::min();
    for (const auto d : departs) {
      while (ai < arrives.size() && arrives[ai] < d)
        running_arrive = std::max(running_arrive, work_[arrives[ai++]].time);
      Event& e = work_[d];
      if (d < last_arrive) {
        // Depart recorded before a later arrive: move it after every
        // arrive, raising its time to the episode's latest arrival.
        Event moved = e;
        const Tick nt = std::max(moved.time, max_arrive);
        record(ViolationKind::kBarrierOrder,
               RepairStrategy::kRaiseBarrierDepart, d, nt - moved.time,
               strf("barrier %u episode %lld: depart moved after arrivals",
                    unsigned(e.object), static_cast<long long>(e.payload)));
        moved.time = nt;
        ed.drop_event(d);
        ed.insert(last_arrive + 1, moved);
        changed = true;
      } else if (e.time + opt_.sync_slack < running_arrive) {
        const Tick delta = running_arrive - e.time;
        record(ViolationKind::kBarrierOrder,
               RepairStrategy::kRaiseBarrierDepart, d, delta,
               strf("barrier %u episode %lld: depart raised %lld ticks to "
                    "last arrival",
                    unsigned(e.object), static_cast<long long>(e.payload),
                    static_cast<long long>(delta)));
        e.time = running_arrive;
        changed = true;
      }
    }
    return changed;
  }

  bool clamp_processor_times() {
    std::unordered_map<ProcId, Tick> last;
    bool changed = false;
    for (std::size_t i = 0; i < work_.size(); ++i) {
      Event& e = work_[i];
      const auto it = last.find(e.proc);
      if (it != last.end() && e.time < it->second) {
        const Tick delta = it->second - e.time;
        record(ViolationKind::kNonMonotoneProcessorTime,
               RepairStrategy::kClampProcessorTime, i, delta,
               strf("proc %u: time raised %lld ticks to stay monotone",
                    unsigned(e.proc), static_cast<long long>(delta)));
        e.time = it->second;
        changed = true;
      }
      last[e.proc] = std::max(it == last.end() ? e.time : it->second, e.time);
    }
    return changed;
  }

  /// Aggressive last resort: drop every event the validator can still point
  /// at.  Unattributable violations (episode/lock summaries) have been
  /// handled by their structural fixes; whatever remains attributable goes.
  bool escalate(const std::vector<Violation>& violations) {
    Edits ed(work_.size());
    for (const auto& v : violations) {
      if (v.event_index == kNoEvent || v.event_index >= work_.size()) continue;
      if (ed.drop[v.event_index]) continue;
      ed.drop_event(v.event_index);
      record(v.kind, RepairStrategy::kDropEvent, v.event_index, 0,
             "aggressive: dropped offending event (" + v.message + ")");
    }
    apply_edits(work_, ed);
    return ed.any;
  }

  Trace work_;
  RepairOptions opt_;
  RepairManifest manifest_;
  RepairSeverity worst_ = RepairSeverity::kClean;
};

}  // namespace

std::string render_manifest(const RepairManifest& manifest) {
  std::string out = strf(
      "repair: %s — %zu pass(es), %zu dropped, %zu synthesized, %zu "
      "adjusted (%lld ticks total)\n",
      repair_severity_name(manifest.severity), manifest.passes,
      manifest.events_dropped, manifest.events_synthesized,
      manifest.events_adjusted,
      static_cast<long long>(manifest.total_ticks_adjusted));
  std::map<RepairStrategy, std::size_t> histogram;
  for (const auto& a : manifest.actions) ++histogram[a.strategy];
  for (const auto& [strategy, count] : histogram)
    out += strf("  %6zu × %s\n", count, repair_strategy_name(strategy));
  constexpr std::size_t kShowActions = 20;
  for (std::size_t i = 0; i < manifest.actions.size() && i < kShowActions;
       ++i) {
    const auto& a = manifest.actions[i];
    out += strf("  [%s] %s", violation_kind_name(a.kind),
                a.detail.c_str());
    if (a.event_index != static_cast<std::size_t>(-1))
      out += strf(" (event %zu)", a.event_index);
    out += '\n';
  }
  if (manifest.actions.size() > kShowActions)
    out += strf("  ... %zu more action(s)\n",
                manifest.actions.size() - kShowActions);
  if (manifest.actions_truncated)
    out += "  (action list truncated; counters cover everything)\n";
  if (!manifest.remaining.empty()) {
    out += strf("  %zu violation(s) remain:\n", manifest.remaining.size());
    out += describe(manifest.remaining);
  }
  return out;
}

RepairResult repair(const Trace& trace, const RepairOptions& options) {
  return Repairer(trace, options).run();
}

}  // namespace perturb::trace
