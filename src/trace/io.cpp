#include "trace/io.hpp"

#include <cstddef>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PERTURB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "support/check.hpp"
#include "support/crc32.hpp"
#include "support/fsio.hpp"
#include "support/metrics.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::Crc32;
using support::split;
using support::starts_with;
using support::strf;
using support::trim;

namespace {

// Sanity caps: no legitimate trace exceeds these, so larger declared values
// mean a corrupt header rather than a big file.
constexpr std::uint32_t kMaxNameLen = 1u << 20;
constexpr std::uint32_t kMaxProcs = 1u << 20;

[[noreturn]] void io_fail(const std::string& msg) { throw IoError(msg); }

/// Header-level defects: the bytes are not a usable trace at all (empty
/// file, bad magic, corrupt or truncated header).  Not salvageable and not
/// an I/O failure — see MalformedTraceError.
[[noreturn]] void malformed_fail(const std::string& msg) {
  throw MalformedTraceError(msg);
}

}  // namespace

void write_text(std::ostream& out, const Trace& trace) {
  out << "#perturb-trace v1\n";
  out << "#name " << trace.info().name << '\n';
  out << "#procs " << trace.info().num_procs << '\n';
  out << strf("#ticks_per_us %.9g\n", trace.info().ticks_per_us);
  for (const auto& e : trace) {
    out << strf("%lld %s %u %u %u %lld\n", static_cast<long long>(e.time),
                event_kind_name(e.kind), unsigned(e.proc), unsigned(e.id),
                unsigned(e.object), static_cast<long long>(e.payload));
  }
}

Trace read_text(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    malformed_fail("empty trace file (no header line)");
  if (trim(line) != "#perturb-trace v1")
    malformed_fail("bad trace header: " + line);
  TraceInfo info;
  bool have_info = false;
  std::vector<Event> events;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "#name ")) {
      info.name = line.substr(6);
    } else if (starts_with(line, "#procs ")) {
      const auto procs = std::strtoul(line.c_str() + 7, nullptr, 10);
      PERTURB_CHECK_MSG(procs <= kMaxProcs,
                        "absurd #procs directive: " + line);
      info.num_procs = static_cast<std::uint32_t>(procs);
      have_info = true;
    } else if (starts_with(line, "#ticks_per_us ")) {
      info.ticks_per_us = std::strtod(line.c_str() + 14, nullptr);
    } else if (line[0] == '#') {
      // Unknown directive: ignored for forward compatibility.
    } else {
      const auto fields = split(line, ' ');
      PERTURB_CHECK_MSG(fields.size() == 6, "bad trace line: " + line);
      Event e;
      e.time = std::strtoll(fields[0].c_str(), nullptr, 10);
      e.kind = event_kind_from_name(fields[1]);
      e.proc = static_cast<ProcId>(std::strtoul(fields[2].c_str(), nullptr, 10));
      e.id = static_cast<EventId>(std::strtoul(fields[3].c_str(), nullptr, 10));
      e.object =
          static_cast<ObjectId>(std::strtoul(fields[4].c_str(), nullptr, 10));
      e.payload = std::strtoll(fields[5].c_str(), nullptr, 10);
      events.push_back(e);
    }
  }
  PERTURB_CHECK_MSG(have_info, "trace missing #procs directive");
  Trace t(info);
  for (const auto& e : events) t.append(e);
  return t;
}

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
/// Events per v2 chunk: small enough that a flipped bit discards little
/// (~27 KiB of events), large enough that the 8-byte frame is negligible.
constexpr std::size_t kChunkEvents = 1024;
/// Serialized size of one event record (time, payload, id, object, proc,
/// kind), identical in v1 and v2.
constexpr std::size_t kEventBytes = 8 + 8 + 4 + 4 + 2 + 1;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in.good()) io_fail("truncated binary trace");
  return v;
}

/// Header-field read: truncation here means the header itself is cut, which
/// is a malformed (unsalvageable) trace rather than a torn body.
template <typename T>
T get_header(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in.good()) malformed_fail("binary trace header truncated");
  return v;
}

/// Bytes left in the stream from the current position, when the stream is
/// seekable; SIZE_MAX otherwise (no way to pre-check, rely on read failures).
std::size_t stream_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return std::numeric_limits<std::size_t>::max();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos)
    return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(end - pos);
}

/// Append-only byte buffer with typed writes, for building checksummed
/// blocks before they hit the stream.
struct ByteSink {
  std::vector<char> bytes;

  template <typename T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
};

/// Bounds-checked reader over an in-memory (already CRC-verified) block.
struct ByteSource {
  const char* p;
  const char* end;

  template <typename T>
  T get() {
    if (static_cast<std::size_t>(end - p) < sizeof(T))
      io_fail("binary trace block underrun");
    T v{};
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

void put_event(ByteSink& sink, const Event& e) {
  sink.put(e.time);
  sink.put(e.payload);
  sink.put(e.id);
  sink.put(e.object);
  sink.put(e.proc);
  sink.put(static_cast<std::uint8_t>(e.kind));
}

Event get_event(ByteSource& src) {
  Event e;
  e.time = src.get<Tick>();
  e.payload = src.get<std::int64_t>();
  e.id = src.get<EventId>();
  e.object = src.get<ObjectId>();
  e.proc = src.get<ProcId>();
  const auto kind = src.get<std::uint8_t>();
  if (kind >= kNumEventKinds) io_fail("bad event kind in binary trace");
  e.kind = static_cast<EventKind>(kind);
  return e;
}

/// Reads the v2 header block (length-prefixed, CRC-trailed).  Throws IoError
/// on corruption — a trace whose metadata cannot be trusted is unsalvageable.
TraceInfo read_header_v2(std::istream& in, std::uint64_t& count) {
  const auto header_len = get_header<std::uint32_t>(in);
  if (header_len > kMaxNameLen + 64)
    malformed_fail(
        strf("binary trace header field #header_len %u exceeds sanity cap",
             unsigned(header_len)));
  if (header_len > stream_remaining(in))
    malformed_fail("binary trace header truncated");
  std::vector<char> block(header_len);
  in.read(block.data(), static_cast<std::streamsize>(header_len));
  if (!in.good()) malformed_fail("binary trace header truncated");
  const auto crc = get_header<std::uint32_t>(in);
  if (crc != support::crc32(block.data(), block.size()))
    malformed_fail("binary trace header checksum mismatch");
  return detail::parse_v2_header_block(block.data(), block.size(), count);
}

/// Shared v2 chunk-reading loop.  In strict mode any defect throws IoError;
/// in salvage mode reading stops at the first defect and the prefix read so
/// far is kept.
Trace read_v2(std::istream& in, bool salvage, SalvageReport& report) {
  std::uint64_t count = 0;
  const TraceInfo info = read_header_v2(in, count);
  report.version = kVersionV2;
  report.events_declared = static_cast<std::size_t>(count);
  report.chunks_total =
      static_cast<std::size_t>((count + kChunkEvents - 1) / kChunkEvents);

  // Allocation guard: the declared count must fit in the bytes that remain
  // (each event costs kEventBytes plus per-chunk framing).  In salvage mode
  // an over-declared count is just a torn file — the chunk loop below reads
  // whatever chunks survive without ever allocating more than one chunk.
  const auto remaining = stream_remaining(in);
  if (!salvage && remaining != std::numeric_limits<std::size_t>::max() &&
      count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  auto defect = [&](const std::string& msg) {
    if (!salvage) io_fail(msg);
    report.complete = false;
    if (report.detail.empty()) report.detail = msg;
  };

  std::uint64_t read_events = 0;
  std::vector<char> payload;
  while (read_events < count) {
    const std::uint64_t expect =
        std::min<std::uint64_t>(kChunkEvents, count - read_events);
    std::uint32_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in.good()) {
      defect(strf("chunk %zu: frame truncated", t.size() / kChunkEvents));
      break;
    }
    if (n != expect) {
      defect(strf("chunk %zu: declares %u events, expected %llu",
                  t.size() / kChunkEvents, unsigned(n),
                  static_cast<unsigned long long>(expect)));
      break;
    }
    payload.resize(static_cast<std::size_t>(n) * kEventBytes);
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!in.good()) {
      defect(strf("chunk %zu: payload truncated", t.size() / kChunkEvents));
      break;
    }
    std::uint32_t crc = 0;
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    Crc32 acc;
    acc.update(&n, sizeof(n));
    acc.update(payload.data(), payload.size());
    if (!in.good() || crc != acc.value()) {
      defect(strf("chunk %zu: checksum mismatch", t.size() / kChunkEvents));
      break;
    }
    ByteSource src{payload.data(), payload.data() + payload.size()};
    bool bad_event = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      // A bad kind under a passing CRC means the file was *written*
      // corrupt; in salvage mode keep the events before it.
      try {
        t.append(get_event(src));
      } catch (const IoError& e) {
        defect(strf("chunk %zu: %s", t.size() / kChunkEvents, e.what()));
        bad_event = true;
        break;
      }
    }
    if (bad_event) break;
    read_events += expect;
    ++report.chunks_recovered;
  }
  report.events_recovered = t.size();
  return t;
}

/// Legacy v1 reader (unframed, no checksums).  Salvage mode keeps the
/// events read before the stream ran out.
Trace read_v1(std::istream& in, bool salvage, SalvageReport& report) {
  const auto name_len = get_header<std::uint32_t>(in);
  if (name_len > kMaxNameLen)
    malformed_fail(
        strf("binary trace header field #name_len %u exceeds sanity cap",
             unsigned(name_len)));
  if (name_len > stream_remaining(in))
    malformed_fail("binary trace header truncated");
  TraceInfo info;
  info.name.assign(name_len, '\0');
  in.read(info.name.data(), static_cast<std::streamsize>(name_len));
  if (!in.good()) malformed_fail("binary trace header truncated");
  info.num_procs = get_header<std::uint32_t>(in);
  if (info.num_procs > kMaxProcs)
    malformed_fail(strf("binary trace header field #procs %u exceeds sanity cap",
                        unsigned(info.num_procs)));
  info.ticks_per_us = get_header<double>(in);
  const auto count = get_header<std::uint64_t>(in);
  report.version = kVersionV1;
  report.events_declared = static_cast<std::size_t>(count);

  const auto remaining = stream_remaining(in);
  if (!salvage && remaining != std::numeric_limits<std::size_t>::max() &&
      count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<char> rec(kEventBytes);
    in.read(rec.data(), static_cast<std::streamsize>(rec.size()));
    if (!in.good()) {
      if (!salvage) io_fail("truncated binary trace");
      report.complete = false;
      report.detail = strf("event %llu of %llu: record truncated",
                           static_cast<unsigned long long>(i),
                           static_cast<unsigned long long>(count));
      break;
    }
    ByteSource src{rec.data(), rec.data() + rec.size()};
    try {
      t.append(get_event(src));
    } catch (const IoError& e) {
      if (!salvage) throw;
      report.complete = false;
      report.detail = e.what();
      break;
    }
  }
  report.events_recovered = t.size();
  return t;
}

Trace read_binary_impl(std::istream& in, bool salvage, SalvageReport& report) {
  char magic[4];
  in.read(magic, 4);
  if (!in.good()) {
    if (in.gcount() == 0) malformed_fail("empty trace file (zero bytes)");
    malformed_fail("bad binary trace magic");
  }
  if (std::memcmp(magic, kMagic, 4) != 0)
    malformed_fail("bad binary trace magic");
  const auto version = get_header<std::uint32_t>(in);
  if (version == kVersionV1) return read_v1(in, salvage, report);
  if (version == kVersionV2) return read_v2(in, salvage, report);
  malformed_fail(strf("unsupported binary trace version %u", unsigned(version)));
}

// ---- zero-copy buffer reader -------------------------------------------
//
// The serialized record layout (time, payload, id, object, proc, kind;
// native byte order) coincides with Event's in-memory field layout, so a
// record decodes with one bounded memcpy instead of six typed reads.  The
// asserts pin that coincidence; a platform that violates them must grow a
// field-wise fallback, not silently misdecode.
static_assert(offsetof(Event, time) == 0);
static_assert(offsetof(Event, payload) == 8);
static_assert(offsetof(Event, id) == 16);
static_assert(offsetof(Event, object) == 20);
static_assert(offsetof(Event, proc) == 24);
static_assert(offsetof(Event, kind) == 26);
static_assert(sizeof(Event) >= kEventBytes);

/// Forward-only cursor over the file image.
struct BufCursor {
  const char* p;
  const char* end;

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end - p);
  }
  /// Reads a little POD field; strict-fails with the stream reader's
  /// truncation message when the image runs out.
  template <typename T>
  T get() {
    if (remaining() < sizeof(T)) io_fail("truncated binary trace");
    T v{};
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }

  /// Header-field read; see get_header(std::istream&).
  template <typename T>
  T get_header() {
    if (remaining() < sizeof(T))
      malformed_fail("binary trace header truncated");
    T v{};
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

}  // namespace

namespace detail {

std::uint32_t decode_event_records(const char* src, std::uint32_t n,
                                   Event* dst) {
  for (std::uint32_t i = 0; i < n; ++i, src += kEventBytes) {
    if (static_cast<unsigned char>(src[26]) >= kNumEventKinds) return i;
    // void* cast: the record covers only the first 27 bytes (tail padding
    // keeps its prior value), which -Wclass-memaccess would flag.
    std::memcpy(static_cast<void*>(dst + i), src, kEventBytes);
  }
  return n;
}

TraceInfo parse_v2_header_block(const char* block, std::size_t len,
                                std::uint64_t& count) {
  try {
    ByteSource src{block, block + len};
    const auto name_len = src.get<std::uint32_t>();
    if (name_len > static_cast<std::size_t>(src.end - src.p))
      malformed_fail(
          strf("binary trace header field #name_len %u exceeds header size",
               unsigned(name_len)));
    TraceInfo info;
    info.name.assign(src.p, name_len);
    src.p += name_len;
    info.num_procs = src.get<std::uint32_t>();
    if (info.num_procs > kMaxProcs)
      malformed_fail(strf("binary trace header field #procs %u exceeds sanity cap",
                          unsigned(info.num_procs)));
    info.ticks_per_us = src.get<double>();
    count = src.get<std::uint64_t>();
    return info;
  } catch (const IoError&) {
    // ByteSource underrun inside the header block: the header is malformed.
    malformed_fail("binary trace header truncated");
  }
}

}  // namespace detail

namespace {

/// v2 header parse over the buffer; same checks and messages as
/// read_header_v2.
TraceInfo read_header_v2_buffer(BufCursor& cur, std::uint64_t& count) {
  const auto header_len = cur.get_header<std::uint32_t>();
  if (header_len > kMaxNameLen + 64)
    malformed_fail(
        strf("binary trace header field #header_len %u exceeds sanity cap",
             unsigned(header_len)));
  if (header_len > cur.remaining())
    malformed_fail("binary trace header truncated");
  const char* block = cur.p;
  cur.p += header_len;
  const auto crc = cur.get_header<std::uint32_t>();
  if (crc != support::crc32(block, header_len))
    malformed_fail("binary trace header checksum mismatch");
  return detail::parse_v2_header_block(block, header_len, count);
}

Trace read_v2_buffer(BufCursor cur, bool salvage, SalvageReport& report) {
  std::uint64_t count = 0;
  const TraceInfo info = read_header_v2_buffer(cur, count);
  report.version = kVersionV2;
  report.events_declared = static_cast<std::size_t>(count);
  report.chunks_total =
      static_cast<std::size_t>((count + kChunkEvents - 1) / kChunkEvents);

  const std::size_t remaining = cur.remaining();
  if (!salvage && count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  // Pre-size for the full declared count, bounded by what the image can
  // actually hold (salvage mode accepts over-declared counts); decoded
  // records land directly in the final storage and the vector is trimmed to
  // the recovered prefix afterwards.
  t.events().resize(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, remaining / kEventBytes + 1)));
  std::size_t filled = 0;
  auto defect = [&](const std::string& msg) {
    if (!salvage) io_fail(msg);
    report.complete = false;
    if (report.detail.empty()) report.detail = msg;
  };

  std::uint64_t read_events = 0;
  while (read_events < count) {
    const std::uint64_t expect =
        std::min<std::uint64_t>(kChunkEvents, count - read_events);
    const std::size_t chunk_no = filled / kChunkEvents;
    if (cur.remaining() < sizeof(std::uint32_t)) {
      defect(strf("chunk %zu: frame truncated", chunk_no));
      break;
    }
    std::uint32_t n = 0;
    std::memcpy(&n, cur.p, sizeof(n));
    if (n != expect) {
      defect(strf("chunk %zu: declares %u events, expected %llu", chunk_no,
                  unsigned(n), static_cast<unsigned long long>(expect)));
      break;
    }
    const std::size_t payload_bytes =
        static_cast<std::size_t>(n) * kEventBytes;
    if (cur.remaining() - sizeof(n) < payload_bytes) {
      defect(strf("chunk %zu: payload truncated", chunk_no));
      break;
    }
    const std::size_t frame_bytes = sizeof(n) + payload_bytes;
    std::uint32_t crc = 0;
    if (cur.remaining() - frame_bytes < sizeof(crc) ||
        (std::memcpy(&crc, cur.p + frame_bytes, sizeof(crc)),
         crc != support::crc32(cur.p, frame_bytes))) {
      defect(strf("chunk %zu: checksum mismatch", chunk_no));
      break;
    }
    const std::uint32_t decoded = detail::decode_event_records(
        cur.p + sizeof(n), n, t.events().data() + filled);
    filled += decoded;
    if (decoded != n) {
      defect(strf("chunk %zu: bad event kind in binary trace", chunk_no));
      break;
    }
    cur.p += frame_bytes + sizeof(crc);
    read_events += expect;
    ++report.chunks_recovered;
  }
  t.events().resize(filled);
  report.events_recovered = t.size();
  return t;
}

Trace read_v1_buffer(BufCursor cur, bool salvage, SalvageReport& report) {
  const auto name_len = cur.get_header<std::uint32_t>();
  if (name_len > kMaxNameLen)
    malformed_fail(
        strf("binary trace header field #name_len %u exceeds sanity cap",
             unsigned(name_len)));
  if (name_len > cur.remaining())
    malformed_fail("binary trace header truncated");
  TraceInfo info;
  info.name.assign(cur.p, name_len);
  cur.p += name_len;
  info.num_procs = cur.get_header<std::uint32_t>();
  if (info.num_procs > kMaxProcs)
    malformed_fail(strf("binary trace header field #procs %u exceeds sanity cap",
                        unsigned(info.num_procs)));
  info.ticks_per_us = cur.get_header<double>();
  const auto count = cur.get_header<std::uint64_t>();
  report.version = kVersionV1;
  report.events_declared = static_cast<std::size_t>(count);

  const std::size_t remaining = cur.remaining();
  if (!salvage && count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  // Decode every whole record the image holds (capped by the declared
  // count), in u32-sized batches for decode_events; the vector is trimmed
  // to the decoded prefix if a bad kind stops the decode early.
  const std::uint64_t whole =
      std::min<std::uint64_t>(count, remaining / kEventBytes);
  t.events().resize(static_cast<std::size_t>(whole));
  std::uint64_t done = 0;
  bool bad_kind = false;
  while (done < whole) {
    const auto step = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(whole - done, 1u << 30));
    const auto got = detail::decode_event_records(cur.p + done * kEventBytes,
                                                  step, t.events().data() + done);
    done += got;
    if (got != step) {
      bad_kind = true;
      break;
    }
  }
  t.events().resize(static_cast<std::size_t>(done));
  if (bad_kind) {
    if (!salvage) io_fail("bad event kind in binary trace");
    report.complete = false;
    report.detail = "bad event kind in binary trace";
  } else if (done < count) {
    // The image ran out of full records before the declared count.
    if (!salvage) io_fail("truncated binary trace");
    report.complete = false;
    report.detail = strf("event %llu of %llu: record truncated",
                         static_cast<unsigned long long>(done),
                         static_cast<unsigned long long>(count));
  }
  report.events_recovered = t.size();
  return t;
}

Trace read_binary_buffer_impl(const char* data, std::size_t size, bool salvage,
                              SalvageReport& report) {
  BufCursor cur{data, data + size};
  if (size == 0) malformed_fail("empty trace file (zero bytes)");
  if (cur.remaining() < 4 || std::memcmp(cur.p, kMagic, 4) != 0)
    malformed_fail("bad binary trace magic");
  cur.p += 4;
  const auto version = cur.get_header<std::uint32_t>();
  if (version == kVersionV1) return read_v1_buffer(cur, salvage, report);
  if (version == kVersionV2) return read_v2_buffer(cur, salvage, report);
  malformed_fail(strf("unsupported binary trace version %u", unsigned(version)));
}

}  // namespace

std::string SalvageReport::describe() const {
  if (complete)
    return strf("complete: %zu events (format v%u)", events_recovered,
                unsigned(version));
  return strf("salvaged %zu of %zu events (%zu of %zu chunks, format v%u): %s",
              events_recovered, events_declared, chunks_recovered,
              chunks_total, unsigned(version), detail.c_str());
}

void write_binary(std::ostream& out, const Trace& trace) {
  // Buffered: the whole file image is assembled in one buffer and written
  // with a single stream call, instead of three stream writes (and a staging
  // ByteSink allocation) per chunk.  Byte-for-byte identical output.
  const std::size_t chunks =
      (trace.size() + kChunkEvents - 1) / kChunkEvents;
  ByteSink file;
  file.bytes.reserve(4 + sizeof(kVersionV2) + 8 + trace.info().name.size() +
                     24 + trace.size() * kEventBytes + chunks * 8);
  file.bytes.insert(file.bytes.end(), kMagic, kMagic + 4);
  file.put(kVersionV2);

  ByteSink header;
  header.put<std::uint32_t>(
      static_cast<std::uint32_t>(trace.info().name.size()));
  header.bytes.insert(header.bytes.end(), trace.info().name.begin(),
                      trace.info().name.end());
  header.put(trace.info().num_procs);
  header.put(trace.info().ticks_per_us);
  header.put<std::uint64_t>(trace.size());
  file.put<std::uint32_t>(static_cast<std::uint32_t>(header.bytes.size()));
  file.bytes.insert(file.bytes.end(), header.bytes.begin(),
                    header.bytes.end());
  file.put<std::uint32_t>(
      support::crc32(header.bytes.data(), header.bytes.size()));

  for (std::size_t base = 0; base < trace.size(); base += kChunkEvents) {
    const auto n = static_cast<std::uint32_t>(
        std::min(kChunkEvents, trace.size() - base));
    const std::size_t frame_begin = file.bytes.size();
    file.put(n);
    for (std::uint32_t i = 0; i < n; ++i) put_event(file, trace[base + i]);
    file.put<std::uint32_t>(
        support::crc32(file.bytes.data() + frame_begin,
                       file.bytes.size() - frame_begin));
  }
  out.write(file.bytes.data(), static_cast<std::streamsize>(file.bytes.size()));
}

Trace read_binary(std::istream& in) {
  SalvageReport report;
  return read_binary_impl(in, /*salvage=*/false, report);
}

Trace read_binary_salvage(std::istream& in, SalvageReport& report) {
  report = SalvageReport{};
  return read_binary_impl(in, /*salvage=*/true, report);
}

Trace read_binary(const char* data, std::size_t size) {
  SalvageReport report;
  return read_binary_buffer_impl(data, size, /*salvage=*/false, report);
}

Trace read_binary_salvage(const char* data, std::size_t size,
                          SalvageReport& report) {
  report = SalvageReport{};
  return read_binary_buffer_impl(data, size, /*salvage=*/true, report);
}

namespace {

bool is_text_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0;
}

}  // namespace

FileImage::FileImage(const std::string& path, std::vector<char>& fallback) {
#ifdef PERTURB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_fail("cannot open for read: " + path);
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    const auto len = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      map_ = map;
      data_ = static_cast<const char*>(map);
      size_ = len;
      return;
    }
  }
  // Not a regular mappable file (pipe, empty, exotic fs): read it whole.
  fallback.clear();
  char buf[1 << 16];
  for (;;) {
    const ::ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      ::close(fd);
      io_fail("cannot open for read: " + path);
    }
    if (got == 0) break;
    fallback.insert(fallback.end(), buf, buf + got);
  }
  ::close(fd);
  data_ = fallback.data();
  size_ = fallback.size();
#else
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) io_fail("cannot open for read: " + path);
  fallback.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  data_ = fallback.data();
  size_ = fallback.size();
#endif
}

FileImage::~FileImage() {
#ifdef PERTURB_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

void save(const std::string& path, const Trace& trace) {
  // Atomic: the image is rendered in memory and published with a temp-file +
  // rename, so a crash or ENOSPC mid-save never leaves a torn trace at
  // `path` (the salvage reader should earn its keep on real corruption, not
  // on our own interrupted writes).
  std::ostringstream out;
  if (is_text_path(path))
    write_text(out, trace);
  else
    write_binary(out, trace);
  if (!out.good()) io_fail("write failed: " + path);
  std::string error;
  if (!support::write_file_atomic(path, out.str(), &error))
    io_fail("cannot write " + path + ": " + error);
}

namespace {

// Self-observability: file/byte volume through the load paths and how much
// of a torn file the salvage pass got back.
const support::Counter kLoadFiles("io.load.files");
const support::Counter kLoadBytes("io.load.bytes");
const support::Counter kSalvageChunksTotal("io.salvage.chunks_total");
const support::Counter kSalvageChunksRecovered("io.salvage.chunks_recovered");
const support::Counter kSalvageIncomplete("io.salvage.incomplete");

/// Opens a text trace for reading and records its size (binary loads count
/// the mapped image instead).
std::ifstream open_text_counted(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) io_fail("cannot open for read: " + path);
  const auto end = in.tellg();
  if (end > 0) kLoadBytes.add(static_cast<std::uint64_t>(end));
  in.seekg(0);
  return in;
}

}  // namespace

Trace load(const std::string& path) {
  IoArena arena;
  return load(path, arena);
}

Trace load(const std::string& path, IoArena& arena) {
  kLoadFiles.add();
  if (is_text_path(path)) {
    std::ifstream in = open_text_counted(path);
    return read_text(in);
  }
  const FileImage image(path, arena.buffer);
  kLoadBytes.add(image.size());
  return read_binary(image.data(), image.size());
}

Trace load_salvage(const std::string& path, SalvageReport& report) {
  IoArena arena;
  return load_salvage(path, report, arena);
}

Trace load_salvage(const std::string& path, SalvageReport& report,
                   IoArena& arena) {
  kLoadFiles.add();
  if (is_text_path(path)) {
    std::ifstream in = open_text_counted(path);
    report = SalvageReport{};
    Trace t = read_text(in);
    report.events_declared = report.events_recovered = t.size();
    return t;
  }
  const FileImage image(path, arena.buffer);
  kLoadBytes.add(image.size());
  Trace t = read_binary_salvage(image.data(), image.size(), report);
  kSalvageChunksTotal.add(report.chunks_total);
  kSalvageChunksRecovered.add(report.chunks_recovered);
  if (!report.complete) kSalvageIncomplete.add();
  return t;
}

}  // namespace perturb::trace
