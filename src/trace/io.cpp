#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::split;
using support::starts_with;
using support::strf;
using support::trim;

void write_text(std::ostream& out, const Trace& trace) {
  out << "#perturb-trace v1\n";
  out << "#name " << trace.info().name << '\n';
  out << "#procs " << trace.info().num_procs << '\n';
  out << strf("#ticks_per_us %.9g\n", trace.info().ticks_per_us);
  for (const auto& e : trace) {
    out << strf("%lld %s %u %u %u %lld\n", static_cast<long long>(e.time),
                event_kind_name(e.kind), unsigned(e.proc), unsigned(e.id),
                unsigned(e.object), static_cast<long long>(e.payload));
  }
}

Trace read_text(std::istream& in) {
  std::string line;
  PERTURB_CHECK_MSG(std::getline(in, line), "empty trace stream");
  PERTURB_CHECK_MSG(trim(line) == "#perturb-trace v1",
                    "bad trace header: " + line);
  TraceInfo info;
  Trace out;
  bool have_info = false;
  std::vector<Event> events;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "#name ")) {
      info.name = line.substr(6);
    } else if (starts_with(line, "#procs ")) {
      info.num_procs = static_cast<std::uint32_t>(
          std::strtoul(line.c_str() + 7, nullptr, 10));
      have_info = true;
    } else if (starts_with(line, "#ticks_per_us ")) {
      info.ticks_per_us = std::strtod(line.c_str() + 14, nullptr);
    } else if (line[0] == '#') {
      // Unknown directive: ignored for forward compatibility.
    } else {
      const auto fields = split(line, ' ');
      PERTURB_CHECK_MSG(fields.size() == 6, "bad trace line: " + line);
      Event e;
      e.time = std::strtoll(fields[0].c_str(), nullptr, 10);
      e.kind = event_kind_from_name(fields[1]);
      e.proc = static_cast<ProcId>(std::strtoul(fields[2].c_str(), nullptr, 10));
      e.id = static_cast<EventId>(std::strtoul(fields[3].c_str(), nullptr, 10));
      e.object =
          static_cast<ObjectId>(std::strtoul(fields[4].c_str(), nullptr, 10));
      e.payload = std::strtoll(fields[5].c_str(), nullptr, 10);
      events.push_back(e);
    }
  }
  PERTURB_CHECK_MSG(have_info, "trace missing #procs directive");
  Trace t(info);
  for (const auto& e : events) t.append(e);
  return t;
}

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  PERTURB_CHECK_MSG(in.good(), "truncated binary trace");
  return v;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint32_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  PERTURB_CHECK_MSG(in.good(), "truncated binary trace string");
  return s;
}

}  // namespace

void write_binary(std::ostream& out, const Trace& trace) {
  out.write(kMagic, 4);
  put(out, kVersion);
  put_string(out, trace.info().name);
  put(out, trace.info().num_procs);
  put(out, trace.info().ticks_per_us);
  put<std::uint64_t>(out, trace.size());
  for (const auto& e : trace) {
    put(out, e.time);
    put(out, e.payload);
    put(out, e.id);
    put(out, e.object);
    put(out, e.proc);
    put(out, static_cast<std::uint8_t>(e.kind));
  }
}

Trace read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  PERTURB_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                    "bad binary trace magic");
  const auto version = get<std::uint32_t>(in);
  PERTURB_CHECK_MSG(version == kVersion, "unsupported binary trace version");
  TraceInfo info;
  info.name = get_string(in);
  info.num_procs = get<std::uint32_t>(in);
  info.ticks_per_us = get<double>(in);
  const auto count = get<std::uint64_t>(in);
  Trace t(info);
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    e.time = get<Tick>(in);
    e.payload = get<std::int64_t>(in);
    e.id = get<EventId>(in);
    e.object = get<ObjectId>(in);
    e.proc = get<ProcId>(in);
    const auto kind = get<std::uint8_t>(in);
    PERTURB_CHECK_MSG(kind < kNumEventKinds, "bad event kind in binary trace");
    e.kind = static_cast<EventKind>(kind);
    t.append(e);
  }
  return t;
}

void save(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  PERTURB_CHECK_MSG(out.good(), "cannot open for write: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0)
    write_text(out, trace);
  else
    write_binary(out, trace);
  PERTURB_CHECK_MSG(out.good(), "write failed: " + path);
}

Trace load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PERTURB_CHECK_MSG(in.good(), "cannot open for read: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0)
    return read_text(in);
  return read_binary(in);
}

}  // namespace perturb::trace
