#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/check.hpp"
#include "support/crc32.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::Crc32;
using support::split;
using support::starts_with;
using support::strf;
using support::trim;

namespace {

// Sanity caps: no legitimate trace exceeds these, so larger declared values
// mean a corrupt header rather than a big file.
constexpr std::uint32_t kMaxNameLen = 1u << 20;
constexpr std::uint32_t kMaxProcs = 1u << 20;

[[noreturn]] void io_fail(const std::string& msg) { throw IoError(msg); }

}  // namespace

void write_text(std::ostream& out, const Trace& trace) {
  out << "#perturb-trace v1\n";
  out << "#name " << trace.info().name << '\n';
  out << "#procs " << trace.info().num_procs << '\n';
  out << strf("#ticks_per_us %.9g\n", trace.info().ticks_per_us);
  for (const auto& e : trace) {
    out << strf("%lld %s %u %u %u %lld\n", static_cast<long long>(e.time),
                event_kind_name(e.kind), unsigned(e.proc), unsigned(e.id),
                unsigned(e.object), static_cast<long long>(e.payload));
  }
}

Trace read_text(std::istream& in) {
  std::string line;
  PERTURB_CHECK_MSG(std::getline(in, line), "empty trace stream");
  PERTURB_CHECK_MSG(trim(line) == "#perturb-trace v1",
                    "bad trace header: " + line);
  TraceInfo info;
  bool have_info = false;
  std::vector<Event> events;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "#name ")) {
      info.name = line.substr(6);
    } else if (starts_with(line, "#procs ")) {
      const auto procs = std::strtoul(line.c_str() + 7, nullptr, 10);
      PERTURB_CHECK_MSG(procs <= kMaxProcs,
                        "absurd #procs directive: " + line);
      info.num_procs = static_cast<std::uint32_t>(procs);
      have_info = true;
    } else if (starts_with(line, "#ticks_per_us ")) {
      info.ticks_per_us = std::strtod(line.c_str() + 14, nullptr);
    } else if (line[0] == '#') {
      // Unknown directive: ignored for forward compatibility.
    } else {
      const auto fields = split(line, ' ');
      PERTURB_CHECK_MSG(fields.size() == 6, "bad trace line: " + line);
      Event e;
      e.time = std::strtoll(fields[0].c_str(), nullptr, 10);
      e.kind = event_kind_from_name(fields[1]);
      e.proc = static_cast<ProcId>(std::strtoul(fields[2].c_str(), nullptr, 10));
      e.id = static_cast<EventId>(std::strtoul(fields[3].c_str(), nullptr, 10));
      e.object =
          static_cast<ObjectId>(std::strtoul(fields[4].c_str(), nullptr, 10));
      e.payload = std::strtoll(fields[5].c_str(), nullptr, 10);
      events.push_back(e);
    }
  }
  PERTURB_CHECK_MSG(have_info, "trace missing #procs directive");
  Trace t(info);
  for (const auto& e : events) t.append(e);
  return t;
}

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
/// Events per v2 chunk: small enough that a flipped bit discards little
/// (~27 KiB of events), large enough that the 8-byte frame is negligible.
constexpr std::size_t kChunkEvents = 1024;
/// Serialized size of one event record (time, payload, id, object, proc,
/// kind), identical in v1 and v2.
constexpr std::size_t kEventBytes = 8 + 8 + 4 + 4 + 2 + 1;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in.good()) io_fail("truncated binary trace");
  return v;
}

/// Bytes left in the stream from the current position, when the stream is
/// seekable; SIZE_MAX otherwise (no way to pre-check, rely on read failures).
std::size_t stream_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return std::numeric_limits<std::size_t>::max();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos)
    return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(end - pos);
}

/// Append-only byte buffer with typed writes, for building checksummed
/// blocks before they hit the stream.
struct ByteSink {
  std::vector<char> bytes;

  template <typename T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
};

/// Bounds-checked reader over an in-memory (already CRC-verified) block.
struct ByteSource {
  const char* p;
  const char* end;

  template <typename T>
  T get() {
    if (static_cast<std::size_t>(end - p) < sizeof(T))
      io_fail("binary trace block underrun");
    T v{};
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

void put_event(ByteSink& sink, const Event& e) {
  sink.put(e.time);
  sink.put(e.payload);
  sink.put(e.id);
  sink.put(e.object);
  sink.put(e.proc);
  sink.put(static_cast<std::uint8_t>(e.kind));
}

Event get_event(ByteSource& src) {
  Event e;
  e.time = src.get<Tick>();
  e.payload = src.get<std::int64_t>();
  e.id = src.get<EventId>();
  e.object = src.get<ObjectId>();
  e.proc = src.get<ProcId>();
  const auto kind = src.get<std::uint8_t>();
  if (kind >= kNumEventKinds) io_fail("bad event kind in binary trace");
  e.kind = static_cast<EventKind>(kind);
  return e;
}

/// Reads the v2 header block (length-prefixed, CRC-trailed).  Throws IoError
/// on corruption — a trace whose metadata cannot be trusted is unsalvageable.
TraceInfo read_header_v2(std::istream& in, std::uint64_t& count) {
  const auto header_len = get<std::uint32_t>(in);
  if (header_len > kMaxNameLen + 64)
    io_fail(strf("binary trace header field #header_len %u exceeds sanity cap",
                 unsigned(header_len)));
  if (header_len > stream_remaining(in))
    io_fail("binary trace header truncated");
  std::vector<char> block(header_len);
  in.read(block.data(), static_cast<std::streamsize>(header_len));
  if (!in.good()) io_fail("binary trace header truncated");
  const auto crc = get<std::uint32_t>(in);
  if (crc != support::crc32(block.data(), block.size()))
    io_fail("binary trace header checksum mismatch");

  ByteSource src{block.data(), block.data() + block.size()};
  const auto name_len = src.get<std::uint32_t>();
  if (name_len > static_cast<std::size_t>(src.end - src.p))
    io_fail(strf("binary trace header field #name_len %u exceeds header size",
                 unsigned(name_len)));
  TraceInfo info;
  info.name.assign(src.p, name_len);
  src.p += name_len;
  info.num_procs = src.get<std::uint32_t>();
  if (info.num_procs > kMaxProcs)
    io_fail(strf("binary trace header field #procs %u exceeds sanity cap",
                 unsigned(info.num_procs)));
  info.ticks_per_us = src.get<double>();
  count = src.get<std::uint64_t>();
  return info;
}

/// Shared v2 chunk-reading loop.  In strict mode any defect throws IoError;
/// in salvage mode reading stops at the first defect and the prefix read so
/// far is kept.
Trace read_v2(std::istream& in, bool salvage, SalvageReport& report) {
  std::uint64_t count = 0;
  const TraceInfo info = read_header_v2(in, count);
  report.version = kVersionV2;
  report.events_declared = static_cast<std::size_t>(count);
  report.chunks_total =
      static_cast<std::size_t>((count + kChunkEvents - 1) / kChunkEvents);

  // Allocation guard: the declared count must fit in the bytes that remain
  // (each event costs kEventBytes plus per-chunk framing).  In salvage mode
  // an over-declared count is just a torn file — the chunk loop below reads
  // whatever chunks survive without ever allocating more than one chunk.
  const auto remaining = stream_remaining(in);
  if (!salvage && remaining != std::numeric_limits<std::size_t>::max() &&
      count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  auto defect = [&](const std::string& msg) {
    if (!salvage) io_fail(msg);
    report.complete = false;
    if (report.detail.empty()) report.detail = msg;
  };

  std::uint64_t read_events = 0;
  std::vector<char> payload;
  while (read_events < count) {
    const std::uint64_t expect =
        std::min<std::uint64_t>(kChunkEvents, count - read_events);
    std::uint32_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in.good()) {
      defect(strf("chunk %zu: frame truncated", t.size() / kChunkEvents));
      break;
    }
    if (n != expect) {
      defect(strf("chunk %zu: declares %u events, expected %llu",
                  t.size() / kChunkEvents, unsigned(n),
                  static_cast<unsigned long long>(expect)));
      break;
    }
    payload.resize(static_cast<std::size_t>(n) * kEventBytes);
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!in.good()) {
      defect(strf("chunk %zu: payload truncated", t.size() / kChunkEvents));
      break;
    }
    std::uint32_t crc = 0;
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    Crc32 acc;
    acc.update(&n, sizeof(n));
    acc.update(payload.data(), payload.size());
    if (!in.good() || crc != acc.value()) {
      defect(strf("chunk %zu: checksum mismatch", t.size() / kChunkEvents));
      break;
    }
    ByteSource src{payload.data(), payload.data() + payload.size()};
    bool bad_event = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      // A bad kind under a passing CRC means the file was *written*
      // corrupt; in salvage mode keep the events before it.
      try {
        t.append(get_event(src));
      } catch (const IoError& e) {
        defect(strf("chunk %zu: %s", t.size() / kChunkEvents, e.what()));
        bad_event = true;
        break;
      }
    }
    if (bad_event) break;
    read_events += expect;
    ++report.chunks_recovered;
  }
  report.events_recovered = t.size();
  return t;
}

/// Legacy v1 reader (unframed, no checksums).  Salvage mode keeps the
/// events read before the stream ran out.
Trace read_v1(std::istream& in, bool salvage, SalvageReport& report) {
  const auto name_len = get<std::uint32_t>(in);
  if (name_len > kMaxNameLen)
    io_fail(strf("binary trace header field #name_len %u exceeds sanity cap",
                 unsigned(name_len)));
  if (name_len > stream_remaining(in))
    io_fail("truncated binary trace string");
  TraceInfo info;
  info.name.assign(name_len, '\0');
  in.read(info.name.data(), static_cast<std::streamsize>(name_len));
  if (!in.good()) io_fail("truncated binary trace string");
  info.num_procs = get<std::uint32_t>(in);
  if (info.num_procs > kMaxProcs)
    io_fail(strf("binary trace header field #procs %u exceeds sanity cap",
                 unsigned(info.num_procs)));
  info.ticks_per_us = get<double>(in);
  const auto count = get<std::uint64_t>(in);
  report.version = kVersionV1;
  report.events_declared = static_cast<std::size_t>(count);

  const auto remaining = stream_remaining(in);
  if (!salvage && remaining != std::numeric_limits<std::size_t>::max() &&
      count > remaining / kEventBytes + 1)
    io_fail(strf("binary trace header field #count %llu exceeds remaining "
                 "stream size (%llu bytes)",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(remaining)));

  Trace t(info);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<char> rec(kEventBytes);
    in.read(rec.data(), static_cast<std::streamsize>(rec.size()));
    if (!in.good()) {
      if (!salvage) io_fail("truncated binary trace");
      report.complete = false;
      report.detail = strf("event %llu of %llu: record truncated",
                           static_cast<unsigned long long>(i),
                           static_cast<unsigned long long>(count));
      break;
    }
    ByteSource src{rec.data(), rec.data() + rec.size()};
    try {
      t.append(get_event(src));
    } catch (const IoError& e) {
      if (!salvage) throw;
      report.complete = false;
      report.detail = e.what();
      break;
    }
  }
  report.events_recovered = t.size();
  return t;
}

Trace read_binary_impl(std::istream& in, bool salvage, SalvageReport& report) {
  char magic[4];
  in.read(magic, 4);
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0)
    io_fail("bad binary trace magic");
  const auto version = get<std::uint32_t>(in);
  if (version == kVersionV1) return read_v1(in, salvage, report);
  if (version == kVersionV2) return read_v2(in, salvage, report);
  io_fail(strf("unsupported binary trace version %u", unsigned(version)));
}

}  // namespace

std::string SalvageReport::describe() const {
  if (complete)
    return strf("complete: %zu events (format v%u)", events_recovered,
                unsigned(version));
  return strf("salvaged %zu of %zu events (%zu of %zu chunks, format v%u): %s",
              events_recovered, events_declared, chunks_recovered,
              chunks_total, unsigned(version), detail.c_str());
}

void write_binary(std::ostream& out, const Trace& trace) {
  out.write(kMagic, 4);
  put(out, kVersionV2);

  ByteSink header;
  header.put<std::uint32_t>(
      static_cast<std::uint32_t>(trace.info().name.size()));
  header.bytes.insert(header.bytes.end(), trace.info().name.begin(),
                      trace.info().name.end());
  header.put(trace.info().num_procs);
  header.put(trace.info().ticks_per_us);
  header.put<std::uint64_t>(trace.size());
  put<std::uint32_t>(out, static_cast<std::uint32_t>(header.bytes.size()));
  out.write(header.bytes.data(),
            static_cast<std::streamsize>(header.bytes.size()));
  put<std::uint32_t>(out, support::crc32(header.bytes.data(),
                                         header.bytes.size()));

  for (std::size_t base = 0; base < trace.size(); base += kChunkEvents) {
    const auto n = static_cast<std::uint32_t>(
        std::min(kChunkEvents, trace.size() - base));
    ByteSink chunk;
    for (std::uint32_t i = 0; i < n; ++i) put_event(chunk, trace[base + i]);
    put(out, n);
    out.write(chunk.bytes.data(),
              static_cast<std::streamsize>(chunk.bytes.size()));
    Crc32 acc;
    acc.update(&n, sizeof(n));
    acc.update(chunk.bytes.data(), chunk.bytes.size());
    put<std::uint32_t>(out, acc.value());
  }
}

Trace read_binary(std::istream& in) {
  SalvageReport report;
  return read_binary_impl(in, /*salvage=*/false, report);
}

Trace read_binary_salvage(std::istream& in, SalvageReport& report) {
  report = SalvageReport{};
  return read_binary_impl(in, /*salvage=*/true, report);
}

void save(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) io_fail("cannot open for write: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0)
    write_text(out, trace);
  else
    write_binary(out, trace);
  if (!out.good()) io_fail("write failed: " + path);
}

Trace load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) io_fail("cannot open for read: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0)
    return read_text(in);
  return read_binary(in);
}

Trace load_salvage(const std::string& path, SalvageReport& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) io_fail("cannot open for read: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".ptt") == 0) {
    report = SalvageReport{};
    Trace t = read_text(in);
    report.events_declared = report.events_recovered = t.size();
    return t;
  }
  return read_binary_salvage(in, report);
}

}  // namespace perturb::trace
