// Trace container: a sequence of events in a total order consistent with the
// happened-before relation of the run that produced it (§4.1).  Producers
// append events in resolution order; `sort_canonical()` restores the
// (time, seq) order after batch edits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace perturb::trace {

/// Trace metadata: enough to interpret tick values and processor indices.
struct TraceInfo {
  std::string name;           ///< free-form run label
  std::uint32_t num_procs = 1;
  double ticks_per_us = 1.0;  ///< tick → microsecond conversion
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(TraceInfo info) : info_(std::move(info)) {}

  const TraceInfo& info() const noexcept { return info_; }
  TraceInfo& info() noexcept { return info_; }

  /// Appends an event; the trace records arrival order as the tie-break for
  /// equal timestamps (producers append in happened-before order).
  void append(const Event& e) { events_.push_back(e); }

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const Event& operator[](std::size_t i) const { return events_[i]; }
  Event& operator[](std::size_t i) { return events_[i]; }
  const std::vector<Event>& events() const noexcept { return events_; }
  std::vector<Event>& events() noexcept { return events_; }

  auto begin() const noexcept { return events_.begin(); }
  auto end() const noexcept { return events_.end(); }

  /// Stable sort by time; preserves append order among equal timestamps so a
  /// happened-before-consistent append order stays consistent.
  void sort_canonical();

  /// True if times are nondecreasing in the current order.
  bool is_time_ordered() const noexcept;

  /// Indices of this trace's events belonging to `proc`, in trace order.
  /// One-off convenience; passes that need every processor's chain should
  /// share a trace::TraceIndex instead of rescanning per processor.
  std::vector<std::size_t> processor_events(ProcId proc) const;

  /// Per-processor event *indices* (outer index = processor), in trace
  /// order.  Indices rather than Event copies: splitting a trace must not
  /// duplicate its payload.
  std::vector<std::vector<std::size_t>> by_processor() const;

  /// Earliest event time; 0 on empty trace.
  Tick start_time() const noexcept;
  /// Latest event time; 0 on empty trace.
  Tick end_time() const noexcept;
  /// end_time() - start_time().
  Tick span() const noexcept;

  /// Total execution time: ProgramEnd - ProgramBegin when both markers are
  /// present, otherwise span().
  Tick total_time() const noexcept;

  /// Merges several per-processor (already time-ordered) traces into one
  /// time-ordered trace.  Metadata comes from `info`.
  static Trace merge(TraceInfo info, const std::vector<Trace>& parts);

 private:
  TraceInfo info_;
  std::vector<Event> events_;
};

}  // namespace perturb::trace
