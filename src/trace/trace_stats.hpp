// Descriptive statistics over traces: event-kind counts, per-processor
// activity, and pairwise trace comparison used to score approximations.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace perturb::trace {

struct TraceStats {
  std::size_t total_events = 0;
  std::array<std::size_t, kNumEventKinds> kind_counts{};
  std::vector<std::size_t> per_proc_events;  ///< indexed by processor
  Tick span = 0;
  Tick total_time = 0;
};

TraceStats compute_stats(const Trace& trace);

/// Incremental TraceStats accumulator for streaming loads: feed events in
/// trace order as chunks decode, then build().  Produces exactly what
/// compute_stats reports over the same events — including the edge rules
/// (span 0 when empty, first-wins ProgramBegin, last-wins ProgramEnd,
/// total_time falling back to span without both markers, out-of-range
/// processors counted in totals but not per-proc).
class StatsBuilder {
 public:
  /// `num_procs` sizes the per-processor table (the header's declared
  /// count, like compute_stats uses trace.info().num_procs).
  explicit StatsBuilder(std::size_t num_procs) {
    stats_.per_proc_events.assign(num_procs, 0);
  }

  void add(const Event& e);
  void add(const Event* events, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) add(events[i]);
  }

  TraceStats build() const;

 private:
  TraceStats stats_;
  Tick min_ = 0;
  Tick max_ = 0;
  Tick begin_ = 0;
  Tick end_ = 0;
  bool have_begin_ = false;
  bool have_end_ = false;
};

/// Renders stats as an aligned text table.
std::string render_stats(const TraceStats& stats);

/// Per-event comparison between two traces over the events they share.
///
/// Events are matched by (proc, kind, id, object, payload, per-processor
/// occurrence ordinal), so the comparison is meaningful even if timestamps —
/// and hence global order — differ completely.
struct TraceComparison {
  std::size_t matched_events = 0;
  std::size_t unmatched_a = 0;  ///< events of `a` with no partner in `b`
  std::size_t unmatched_b = 0;
  double mean_abs_time_error = 0.0;  ///< mean |t_a - t_b| over matches
  double rms_time_error = 0.0;
  double p50_abs_time_error = 0.0;   ///< median |t_a - t_b|
  double p95_abs_time_error = 0.0;
  Tick max_abs_time_error = 0;
  double total_time_ratio = 0.0;  ///< a.total_time / b.total_time
};

TraceComparison compare(const Trace& a, const Trace& b);

/// The pre-optimization compare: ordered maps of per-key ordinals.  Produces
/// results identical to compare() (bit-identical floats — the accumulation
/// order over `a` is the same); kept as the equivalence baseline for tests
/// and as the reference timing in bench/bench_sim.
TraceComparison compare_reference(const Trace& a, const Trace& b);

}  // namespace perturb::trace
