// Trace triage & repair: salvage degraded measured traces instead of dying.
//
// Real trace capture produces imperfect data — torn files from killed runs,
// dropped events from full buffers, skewed clocks.  The validator
// (trace/validate.hpp) detects the resulting causality violations; this
// module *repairs* them, applying a per-ViolationKind strategy and recording
// every change in a RepairManifest so downstream consumers know exactly how
// trustworthy the repaired trace is:
//
//   kNonMonotoneProcessorTime → clamp the event up to its predecessor
//   kAwaitEndBeforeAdvance    → raise the awaitE to its advance's time
//   kAwaitEndWithoutAdvance   → drop the orphan awaitE
//   kAwaitEndWithoutBegin     → synthesize the missing awaitB
//   kDuplicateAdvance         → drop the repeated advance
//   kLockOverlap              → raise the acquire to the previous release
//   kLockUnbalanced           → synthesize/drop/reassign releases to balance
//   kBarrierOrder             → move departs after arrives, raising times
//   kBarrierIncomplete        → complete the episode (aggressive: excise it)
//   kSemaphoreUnbalanced      → drop stray V()s, synthesize closing V()s
//
// Repair runs triage→fix→revalidate passes until the trace is clean or the
// pass budget is exhausted; a trace that cannot be made validator-clean is
// reported kUnsalvageable with the remaining violations attached.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace perturb::trace {

enum class RepairStrategy : std::uint8_t {
  kClampProcessorTime,     ///< raised a non-monotone event to its predecessor
  kRaiseAwaitEnd,          ///< raised an awaitE to its advance's time
  kDropOrphanAwaitEnd,     ///< dropped an awaitE with no advance anywhere
  kSynthesizeAwaitBegin,   ///< inserted a missing awaitB before its awaitE
  kDropDuplicateAdvance,   ///< dropped a repeated advance (first kept)
  kRaiseLockAcquire,       ///< raised an acquire to the previous release
  kSynthesizeLockRelease,  ///< inserted a release to close a critical section
  kReassignLockRelease,    ///< re-attributed a release to the actual holder
  kDropLockRelease,        ///< dropped a release with no matching acquire
  kRaiseBarrierDepart,     ///< moved/raised a depart after its arrives
  kSynthesizeBarrierArrive,  ///< inserted an arrive to balance an episode
  kSynthesizeBarrierDepart,  ///< inserted a depart to balance an episode
  kExciseBarrierEpisode,     ///< dropped a hopeless episode (aggressive)
  kDropSemaphoreRelease,   ///< dropped a V() with no held P()
  kSynthesizeSemRelease,   ///< inserted a closing V() for an end-held P()
  kDropEvent,              ///< last-resort drop of an offending event
};

const char* repair_strategy_name(RepairStrategy strategy) noexcept;

/// How trustworthy a repaired trace is, for flagging downstream metrics.
enum class RepairSeverity : std::uint8_t {
  kClean,          ///< no violations; trace untouched
  kCosmetic,       ///< only timestamp clamps / exact-duplicate removal
  kLossy,          ///< events dropped, synthesized, or re-attributed
  kUnsalvageable,  ///< violations remain after repair; do not analyze
};

const char* repair_severity_name(RepairSeverity severity) noexcept;

/// One applied fix: which rule fired, where, and how much it changed.
struct RepairAction {
  ViolationKind kind;       ///< violation class that triggered the fix
  RepairStrategy strategy;
  /// Index of the affected event in the trace *as it was when the action was
  /// applied* (indices shift between passes); SIZE_MAX for appended events.
  std::size_t event_index;
  Tick ticks_adjusted = 0;  ///< |new time - old time| for time adjustments
  std::string detail;
};

/// Provenance record of a repair run: every action plus roll-up counters.
struct RepairManifest {
  std::vector<RepairAction> actions;  ///< capped; see actions_truncated
  bool actions_truncated = false;     ///< counters still cover all actions
  RepairSeverity severity = RepairSeverity::kClean;
  std::size_t passes = 0;
  std::size_t events_dropped = 0;
  std::size_t events_synthesized = 0;
  std::size_t events_adjusted = 0;    ///< timestamp changes + reassignments
  Tick total_ticks_adjusted = 0;
  /// Violations still present after the final pass (empty unless severity is
  /// kUnsalvageable).
  std::vector<Violation> remaining;
};

/// Renders the manifest for diagnostics: severity, counters, a per-strategy
/// histogram, and the first few actions.
std::string render_manifest(const RepairManifest& manifest);

struct RepairOptions {
  /// Enables destructive strategies when conservative ones cannot converge:
  /// excising unbalanced barrier episodes and dropping any event the
  /// validator still attributes a violation to.
  bool aggressive = false;
  /// Timing slack for the embedded validation passes (see
  /// ValidateOptions::sync_slack).
  Tick sync_slack = 0;
  /// Triage→fix→revalidate iterations before giving up.
  std::size_t max_passes = 8;
};

struct RepairResult {
  Trace repaired;
  RepairManifest manifest;
};

/// Triages `trace` with the validator and repairs what it can.  Never
/// throws on degraded input: an unrepairable trace comes back with severity
/// kUnsalvageable and the surviving violations in manifest.remaining.
RepairResult repair(const Trace& trace, const RepairOptions& options = {});

}  // namespace perturb::trace
