// Causality validation of traces.
//
// Perturbation analysis is only meaningful on traces whose total order is
// consistent with the happened-before relation of the run (§4.1).  The
// validator checks the structural rules that any correct (measured or
// approximated) trace must satisfy; analysis outputs are validated in tests
// to guarantee approximations remain *feasible* executions.
#pragma once

#include <string>
#include <vector>

#include "trace/index.hpp"
#include "trace/trace.hpp"

namespace perturb::trace {

enum class ViolationKind {
  kNonMonotoneProcessorTime,  ///< per-processor times must be nondecreasing
  kAwaitEndBeforeAdvance,     ///< awaitE precedes its paired advance
  kAwaitEndWithoutAdvance,    ///< awaitE with no advance for its key
  kAwaitEndWithoutBegin,      ///< awaitE with no awaitB for its key+proc
  kDuplicateAdvance,          ///< two advances with the same key
  kLockOverlap,               ///< overlapping critical sections on one lock
  kLockUnbalanced,            ///< acquire/release not alternating per lock
  kBarrierOrder,              ///< a depart precedes an arrive in its episode
  kBarrierIncomplete,         ///< episode arrivals != departures
  kSemaphoreUnbalanced,       ///< V() without a held P() on that processor
};

const char* violation_kind_name(ViolationKind kind) noexcept;

struct Violation {
  ViolationKind kind;
  std::string message;
  /// Index (into the validated trace) of the offending event, when
  /// attributable; SIZE_MAX otherwise.
  std::size_t event_index;
};

struct ValidateOptions {
  /// Timing slack for cross-processor ordering checks (awaitE vs. advance,
  /// lock overlap and hand-off alternation, barrier depart vs. arrive).  In
  /// *measured* traces the producer-side event's record timestamp is
  /// inflated by its own probe (the operation became visible before the
  /// probe ran), so a dependent event can legitimately be recorded up to one
  /// probe cost earlier than its producer — a lock hand-off acquire can even
  /// precede the release that granted it.  Pass the maximum sync probe cost
  /// when validating instrumented traces; leave 0 for actual or approximated
  /// traces, where the strict alternation rules apply.
  Tick sync_slack = 0;
};

/// Runs all structural checks; returns every violation found (empty = valid).
std::vector<Violation> validate(const Trace& trace,
                                const ValidateOptions& options = {});

/// Same checks over a pre-built index (shared with the other analyses when
/// running inside the pipeline).
std::vector<Violation> validate(const TraceIndex& index,
                                const ValidateOptions& options = {});

/// Convenience: true when validate() finds nothing.
bool is_valid(const Trace& trace, const ValidateOptions& options = {});

/// Renders violations for diagnostics (one per line).
std::string describe(const std::vector<Violation>& violations);

}  // namespace perturb::trace
