// Trace serialization.
//
// Two formats: a line-oriented text format (diff-able, greppable) and a
// compact binary format for large traces.  Both round-trip every field.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace perturb::trace {

/// Writes the text format:
///   #perturb-trace v1
///   #name <name>
///   #procs <n>
///   #ticks_per_us <x>
///   <time> <kind> <proc> <id> <object> <payload>
void write_text(std::ostream& out, const Trace& trace);

/// Parses the text format; throws CheckError on malformed input.
Trace read_text(std::istream& in);

/// Writes the binary format (magic "PTRC", version 1, little-endian).
void write_binary(std::ostream& out, const Trace& trace);

/// Parses the binary format; throws CheckError on malformed input.
Trace read_binary(std::istream& in);

/// File-path conveniences; format chosen by extension (".ptt" text,
/// anything else binary).
void save(const std::string& path, const Trace& trace);
Trace load(const std::string& path);

}  // namespace perturb::trace
