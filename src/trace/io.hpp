// Trace serialization.
//
// Two formats: a line-oriented text format (diff-able, greppable) and a
// compact binary format for large traces.  Both round-trip every field.
//
// Binary format v2 frames events into CRC32-checksummed chunks so that torn
// or bit-flipped files are detected — and, via the salvage API, the longest
// valid prefix is recovered instead of the whole trace being discarded.
// Version 1 files (unframed, no checksums) are still read transparently.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "trace/trace.hpp"

namespace perturb::trace {

/// Thrown on I/O and serialization failures (unreadable file, bad magic,
/// corrupt header, checksum mismatch in strict mode).  Derives from
/// CheckError so existing recovery sites keep working, while tools can map
/// I/O failures to a distinct exit code.
class IoError : public CheckError {
 public:
  explicit IoError(const std::string& what) : CheckError(what) {}
};

/// Thrown when a file's *contents* are not a usable trace at all: zero
/// bytes, wrong magic, an unsupported version, or a corrupt/truncated header
/// — defects from which not even the salvage reader can recover an event.
/// Deliberately NOT an IoError: the file was read fine, its content is
/// invalid, so tools map this to the invalid-trace exit code (2) rather than
/// the I/O-failure code (3).  Body-level corruption past a valid header
/// stays IoError in strict mode (the salvage path recovers a prefix).
class MalformedTraceError : public CheckError {
 public:
  explicit MalformedTraceError(const std::string& what) : CheckError(what) {}
};

/// Outcome of a salvage read: how much of the stream was recovered and why
/// recovery stopped (if it did).
struct SalvageReport {
  bool complete = true;             ///< no corruption or truncation found
  std::uint32_t version = 0;        ///< format version of the stream
  std::size_t events_declared = 0;  ///< event count from the header
  std::size_t events_recovered = 0;
  std::size_t chunks_total = 0;     ///< expected chunk count (v2 only)
  std::size_t chunks_recovered = 0;
  std::string detail;               ///< first corruption diagnosis

  /// One-line human-readable summary.
  std::string describe() const;
};

/// Writes the text format:
///   #perturb-trace v1
///   #name <name>
///   #procs <n>
///   #ticks_per_us <x>
///   <time> <kind> <proc> <id> <object> <payload>
void write_text(std::ostream& out, const Trace& trace);

/// Parses the text format; throws CheckError on malformed input.
Trace read_text(std::istream& in);

/// Writes the binary format (magic "PTRC", version 2, little-endian,
/// CRC32-framed event chunks).
void write_binary(std::ostream& out, const Trace& trace);

/// Parses the binary format (v1 or v2); throws IoError on any corruption,
/// truncation, or checksum mismatch.
Trace read_binary(std::istream& in);

/// Salvage read: recovers the longest valid prefix of a torn, truncated, or
/// bit-flipped binary trace (v1 or v2) and fills `report` with what was
/// recovered and why recovery stopped.  Throws IoError only when nothing is
/// recoverable (bad magic, unusable or corrupt header).
Trace read_binary_salvage(std::istream& in, SalvageReport& report);

/// Zero-copy strict reader over an in-memory image of a binary trace file
/// (the exact bytes a file contains).  Chunk CRCs are verified in place and
/// fixed-width records decode straight into a pre-reserved event vector — no
/// per-chunk staging buffer, no stream indirection.  Accepts and rejects
/// exactly the same inputs as the stream reader, with the same messages.
Trace read_binary(const char* data, std::size_t size);

/// Zero-copy salvage reader over an in-memory file image; same recovery
/// semantics and SalvageReport contents as the stream salvage reader.
Trace read_binary_salvage(const char* data, std::size_t size,
                          SalvageReport& report);

/// Reusable scratch for batched loads.  When a file cannot be memory-mapped
/// (non-POSIX host, special file, empty file) its image is read into
/// `buffer`, whose capacity survives across loads so a long batch settles
/// into zero steady-state allocation.
struct IoArena {
  std::vector<char> buffer;
};

/// The raw bytes of a file, memory-mapped when the platform allows it so
/// binary loads touch each byte exactly once (CRC + decode); otherwise read
/// whole into the caller's reusable buffer.  Throws IoError when the file
/// cannot be opened or read.  Used by the batch loaders and as the file
/// source of the streaming trace::ChunkReader.
class FileImage {
 public:
  FileImage(const std::string& path, std::vector<char>& fallback);
  ~FileImage();

  FileImage(const FileImage&) = delete;
  FileImage& operator=(const FileImage&) = delete;

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  void* map_ = nullptr;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

namespace detail {

/// Decodes `n` fixed-width binary event records (27 bytes each) at `src`
/// into pre-sized storage at `dst`, validating event kinds.  Returns the
/// count actually written (< n only when a bad kind stopped the decode).
/// Shared by the batch readers and the streaming ChunkReader so both decode
/// records identically.
std::uint32_t decode_event_records(const char* src, std::uint32_t n,
                                   Event* dst);

/// Parses the CRC-verified v2 header *block* (name_len, name, num_procs,
/// ticks_per_us, count); throws MalformedTraceError with the batch reader's
/// messages on any defect.
TraceInfo parse_v2_header_block(const char* block, std::size_t len,
                                std::uint64_t& count);

}  // namespace detail

/// File-path conveniences; format chosen by extension (".ptt" text,
/// anything else binary).  Binary loads go through the zero-copy reader over
/// a memory-mapped image of the file when the platform allows it.
void save(const std::string& path, const Trace& trace);
Trace load(const std::string& path);
Trace load(const std::string& path, IoArena& arena);

/// Like load(), but binary traces are read through the salvage path; text
/// traces fill a trivial (complete) report.
Trace load_salvage(const std::string& path, SalvageReport& report);
Trace load_salvage(const std::string& path, SalvageReport& report,
                   IoArena& arena);

}  // namespace perturb::trace
