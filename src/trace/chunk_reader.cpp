#include "trace/chunk_reader.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"
#include "support/crc32.hpp"
#include "support/text.hpp"

namespace perturb::trace {

using support::strf;

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
/// Serialized size of one event record; pinned against Event's layout by
/// the static_asserts in io.cpp.
constexpr std::size_t kEventBytes = 8 + 8 + 4 + 4 + 2 + 1;
constexpr std::uint32_t kMaxNameLen = 1u << 20;

/// Feed-mode buffers compact (drop consumed bytes) once the dead prefix
/// crosses this, so a long stream holds O(chunk) bytes, not O(stream).
constexpr std::size_t kCompactThreshold = 1u << 16;

[[noreturn]] void malformed_fail(const std::string& msg) {
  throw MalformedTraceError(msg);
}

}  // namespace

ChunkReader::ChunkReader(bool salvage) : salvage_(salvage) {}

ChunkReader::ChunkReader(const char* data, std::size_t size, bool salvage)
    : salvage_(salvage),
      borrowed_(true),
      finished_(true),
      data_(data),
      data_size_(size),
      total_bytes_(size) {}

void ChunkReader::feed(const char* data, std::size_t size) {
  PERTURB_CHECK_MSG(!borrowed_, "feed() on a borrowed-image ChunkReader");
  PERTURB_CHECK_MSG(!finished_, "feed() after finish()");
  if (pos_ > kCompactThreshold) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
  total_bytes_ += size;
}

void ChunkReader::defect(const std::string& msg) {
  if (!salvage_) throw IoError(msg);
  report_.complete = false;
  if (report_.detail.empty()) report_.detail = msg;
  state_ = State::kDone;
}

ChunkReader::Status ChunkReader::next(std::vector<Event>& out) {
  for (;;) {
    switch (state_) {
      case State::kMagic: {
        // Magic + version are consumed together; their defects are
        // header-level (malformed) in both strict and salvage mode.
        if (avail() < 8) {
          if (!finished_) return Status::kNeedMore;
          if (total_bytes_ == 0)
            malformed_fail("empty trace file (zero bytes)");
          if (avail() < 4 || std::memcmp(cur(), kMagic, 4) != 0)
            malformed_fail("bad binary trace magic");
          malformed_fail("binary trace header truncated");
        }
        if (std::memcmp(cur(), kMagic, 4) != 0)
          malformed_fail("bad binary trace magic");
        std::uint32_t version = 0;
        std::memcpy(&version, cur() + 4, sizeof(version));
        if (version == kVersionV1)
          malformed_fail(
              "binary trace format v1 is unframed and cannot be streamed; "
              "use the batch reader");
        if (version != kVersionV2)
          malformed_fail(
              strf("unsupported binary trace version %u", unsigned(version)));
        consume(8);
        state_ = State::kHeader;
        break;
      }
      case State::kHeader: {
        if (avail() < sizeof(std::uint32_t)) {
          if (!finished_) return Status::kNeedMore;
          malformed_fail("binary trace header truncated");
        }
        std::uint32_t header_len = 0;
        std::memcpy(&header_len, cur(), sizeof(header_len));
        if (header_len > kMaxNameLen + 64)
          malformed_fail(strf(
              "binary trace header field #header_len %u exceeds sanity cap",
              unsigned(header_len)));
        const std::size_t need =
            sizeof(header_len) + header_len + sizeof(std::uint32_t);
        if (avail() < need) {
          if (!finished_) return Status::kNeedMore;
          malformed_fail("binary trace header truncated");
        }
        const char* block = cur() + sizeof(header_len);
        std::uint32_t crc = 0;
        std::memcpy(&crc, block + header_len, sizeof(crc));
        if (crc != support::crc32(block, header_len))
          malformed_fail("binary trace header checksum mismatch");
        info_ = detail::parse_v2_header_block(block, header_len, count_);
        header_ready_ = true;
        report_.version = kVersionV2;
        report_.events_declared = static_cast<std::size_t>(count_);
        report_.chunks_total = static_cast<std::size_t>(
            (count_ + kStreamChunkEvents - 1) / kStreamChunkEvents);
        // Unlike the strict batch readers there is no declared-count vs
        // bytes-remaining guard here: a feed has no known total size.  An
        // over-declared count surfaces as the chunk defect it tears into.
        consume(need);
        state_ = State::kChunks;
        break;
      }
      case State::kChunks: {
        if (read_events_ >= count_) {
          // All declared events delivered; trailing bytes are ignored, as
          // in the batch readers.
          state_ = State::kDone;
          break;
        }
        const std::uint64_t expect =
            std::min<std::uint64_t>(kStreamChunkEvents, count_ - read_events_);
        const std::size_t chunk_no =
            static_cast<std::size_t>(decoded_events_ / kStreamChunkEvents);
        if (avail() < sizeof(std::uint32_t)) {
          if (!finished_) return Status::kNeedMore;
          defect(strf("chunk %zu: frame truncated", chunk_no));
          break;
        }
        std::uint32_t n = 0;
        std::memcpy(&n, cur(), sizeof(n));
        if (n != expect) {
          defect(strf("chunk %zu: declares %u events, expected %llu", chunk_no,
                      unsigned(n), static_cast<unsigned long long>(expect)));
          break;
        }
        const std::size_t payload_bytes =
            static_cast<std::size_t>(n) * kEventBytes;
        if (avail() - sizeof(n) < payload_bytes) {
          if (!finished_) return Status::kNeedMore;
          defect(strf("chunk %zu: payload truncated", chunk_no));
          break;
        }
        const std::size_t frame_bytes = sizeof(n) + payload_bytes;
        std::uint32_t crc = 0;
        if (avail() - frame_bytes < sizeof(crc)) {
          if (!finished_) return Status::kNeedMore;
          defect(strf("chunk %zu: checksum mismatch", chunk_no));
          break;
        }
        std::memcpy(&crc, cur() + frame_bytes, sizeof(crc));
        if (crc != support::crc32(cur(), frame_bytes)) {
          defect(strf("chunk %zu: checksum mismatch", chunk_no));
          break;
        }
        out.resize(n);
        const std::uint32_t decoded =
            detail::decode_event_records(cur() + sizeof(n), n, out.data());
        if (decoded != n) {
          // Bad kind under a passing CRC: the file was *written* corrupt.
          // Salvage keeps the decoded prefix (batch parity), but the chunk
          // does not count as recovered.
          out.resize(decoded);
          decoded_events_ += decoded;
          report_.events_recovered = static_cast<std::size_t>(decoded_events_);
          defect(strf("chunk %zu: bad event kind in binary trace", chunk_no));
          if (decoded > 0) return Status::kChunk;
          break;
        }
        consume(frame_bytes + sizeof(crc));
        decoded_events_ += n;
        read_events_ += expect;
        ++report_.chunks_recovered;
        report_.events_recovered = static_cast<std::size_t>(decoded_events_);
        return Status::kChunk;
      }
      case State::kDone:
        return Status::kEnd;
    }
  }
}

}  // namespace perturb::trace
