#include "support/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define PERTURB_FSIO_POSIX 1
#include <unistd.h>
#endif

#include "support/text.hpp"

namespace perturb::support {

namespace {

void set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

/// Temporary sibling of `path`: same directory (so the rename cannot cross a
/// filesystem boundary) and pid-tagged (so concurrent writers of the same
/// destination never share a staging file).
std::string temp_name(const std::string& path) {
#ifdef PERTURB_FSIO_POSIX
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return strf("%s.tmp.%ld", path.c_str(), pid);
}

}  // namespace

bool write_file_atomic(const std::string& path, const char* data,
                       std::size_t size, std::string* error) {
  const std::string tmp = temp_name(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    set_error(error, strf("cannot open for write: %s (%s)", tmp.c_str(),
                          std::strerror(errno)));
    return false;
  }
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  ok = std::fflush(f) == 0 && ok;
#ifdef PERTURB_FSIO_POSIX
  // Push the bytes to stable storage before the rename publishes them, so a
  // power loss cannot surface a renamed-but-empty file.
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    set_error(error, strf("write failed: %s (%s)", tmp.c_str(),
                          std::strerror(errno)));
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, strf("cannot rename %s to %s (%s)", tmp.c_str(),
                          path.c_str(), std::strerror(errno)));
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string* error) {
  return write_file_atomic(path, contents.data(), contents.size(), error);
}

}  // namespace perturb::support
