#include "support/prng.hpp"

#include <cmath>

namespace perturb::support {

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256::normal() noexcept {
  // Box–Muller; discard the second variate to stay stateless.
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double keyed_jitter(std::uint64_t seed, std::uint64_t k1, std::uint64_t k2) noexcept {
  const std::uint64_t h = hash_combine(hash_combine(seed, k1), k2);
  // Map to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

}  // namespace perturb::support
