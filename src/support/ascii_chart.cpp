#include "support/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::support {

std::string render_bar_chart(const std::vector<std::string>& series_names,
                             const std::vector<BarGroup>& groups,
                             std::size_t max_width) {
  PERTURB_CHECK(!series_names.empty());
  double vmax = 0.0;
  std::size_t label_w = 0;
  std::size_t series_w = 0;
  for (const auto& name : series_names) series_w = std::max(series_w, name.size());
  for (const auto& g : groups) {
    PERTURB_CHECK_MSG(g.values.size() == series_names.size(),
                      "bar group arity mismatch");
    label_w = std::max(label_w, g.label.size());
    for (double v : g.values) vmax = std::max(vmax, v);
  }
  if (vmax <= 0.0) vmax = 1.0;

  std::string out;
  for (const auto& g : groups) {
    for (std::size_t s = 0; s < series_names.size(); ++s) {
      const double v = g.values[s];
      const auto bar = static_cast<std::size_t>(
          std::lround(v / vmax * static_cast<double>(max_width)));
      out += pad_right(s == 0 ? g.label : std::string(), label_w);
      out += "  ";
      out += pad_right(series_names[s], series_w);
      out += " |";
      out += std::string(bar, s % 2 == 0 ? '#' : '=');
      out += ' ';
      out += fixed(v, 2);
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

namespace {

std::size_t col_of(std::int64_t t, std::int64_t t0, std::int64_t t1,
                   std::size_t width) {
  if (t <= t0) return 0;
  if (t >= t1) return width;
  const double frac = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
  return static_cast<std::size_t>(frac * static_cast<double>(width));
}

std::string time_axis(std::int64_t t0, std::int64_t t1, std::size_t width,
                      std::size_t label_w) {
  std::string axis(label_w + 2, ' ');
  axis += '+';
  axis += std::string(width, '-');
  axis += "+\n";
  std::string ticks(label_w + 2, ' ');
  const std::string lo = strf("%lld", static_cast<long long>(t0));
  const std::string hi = strf("%lld", static_cast<long long>(t1));
  ticks += lo;
  if (width + 2 > lo.size() + hi.size())
    ticks += std::string(width + 2 - lo.size() - hi.size(), ' ');
  ticks += hi;
  ticks += '\n';
  return axis + ticks;
}

}  // namespace

std::string render_timeline(const std::vector<TimelineRow>& rows,
                            std::int64_t t0, std::int64_t t1,
                            std::size_t width) {
  PERTURB_CHECK(t1 > t0);
  std::size_t label_w = 0;
  for (const auto& r : rows) label_w = std::max(label_w, r.label.size());

  std::string out;
  for (const auto& r : rows) {
    std::string cells(width, '.');
    for (const auto& iv : r.intervals) {
      if (iv.end <= iv.begin) continue;
      const std::size_t b = col_of(iv.begin, t0, t1, width);
      std::size_t e = col_of(iv.end, t0, t1, width);
      if (e == b) e = b + 1;  // make short intervals visible
      for (std::size_t c = b; c < std::min(e, width); ++c) cells[c] = '#';
    }
    out += pad_right(r.label, label_w);
    out += " |";
    out += cells;
    out += "|\n";
  }
  out += time_axis(t0, t1, width, label_w);
  return out;
}

std::string render_step_plot(const std::vector<std::pair<std::int64_t, double>>& steps,
                             std::int64_t t0, std::int64_t t1, double vmax,
                             std::size_t width, std::size_t height) {
  PERTURB_CHECK(t1 > t0);
  PERTURB_CHECK(vmax > 0.0);
  PERTURB_CHECK(height > 0);

  // Sample the step function at each column midpoint.
  std::vector<double> samples(width, 0.0);
  for (std::size_t c = 0; c < width; ++c) {
    const double frac = (static_cast<double>(c) + 0.5) / static_cast<double>(width);
    const auto t = t0 + static_cast<std::int64_t>(
                            frac * static_cast<double>(t1 - t0));
    double v = 0.0;
    for (const auto& [st, sv] : steps) {
      if (st <= t) v = sv;
      else break;
    }
    samples[c] = v;
  }

  std::string out;
  const std::size_t label_w = fixed(vmax, 1).size();
  for (std::size_t r = 0; r < height; ++r) {
    const double row_v =
        vmax * static_cast<double>(height - r) / static_cast<double>(height);
    out += pad_left(fixed(row_v, 1), label_w);
    out += " |";
    for (std::size_t c = 0; c < width; ++c)
      out += samples[c] >= row_v - 1e-12 ? '*' : ' ';
    out += '\n';
  }
  out += std::string(label_w, ' ');
  out += " +";
  out += std::string(width, '-');
  out += '\n';
  out += std::string(label_w + 2, ' ');
  const std::string lo = strf("%lld", static_cast<long long>(t0));
  const std::string hi = strf("%lld", static_cast<long long>(t1));
  out += lo;
  if (width > lo.size() + hi.size())
    out += std::string(width - lo.size() - hi.size(), ' ');
  out += hi;
  out += '\n';
  return out;
}

}  // namespace perturb::support
