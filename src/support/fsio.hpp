// Atomic file writes.
//
// Every file the tools and the server emit (metrics snapshots, CSV series,
// binary traces, bench JSON) is written via write_file_atomic: the bytes go
// to a temporary file in the same directory, which is then renamed over the
// destination.  A reader therefore sees either the old complete file or the
// new complete file — never a torn prefix — and a crash or SIGTERM mid-write
// leaves the destination untouched.
#pragma once

#include <cstddef>
#include <string>

namespace perturb::support {

/// Writes `size` bytes at `data` to `path` atomically (temp file + rename).
/// Returns true on success.  On failure returns false, fills `*error` with a
/// diagnosis when non-null, removes the temporary file, and leaves any
/// existing file at `path` untouched.
bool write_file_atomic(const std::string& path, const char* data,
                       std::size_t size, std::string* error = nullptr);

/// Convenience overload for string contents.
bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string* error = nullptr);

}  // namespace perturb::support
