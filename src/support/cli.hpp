// Tiny command-line option parser for the bench and example binaries.
// Supports `--name=value`, `--name value`, and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace perturb::support {

class Cli {
 public:
  /// Parses argv; throws CheckError on malformed input (e.g. `--=x`).
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace perturb::support
