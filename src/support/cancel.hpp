// Cooperative cancellation with deadlines.
//
// A CancelToken is shared between the party that wants work stopped (the
// server's drain path, a deadline armed at admission) and the code doing the
// work (the analysis pipeline, which polls at phase boundaries).  Cancellation
// is cooperative: nothing is interrupted mid-instruction; the worker observes
// the token at its next checkpoint and unwinds by throwing CancelledError,
// leaving every data structure it touched in a consistent state.
//
// The token is safe to poll from any thread and to cancel from any thread;
// both sides use relaxed atomics (a checkpoint that races a cancel by one
// poll interval is within the contract — cancellation is a latency bound,
// not a barrier).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace perturb::support {

/// Why a CancelToken fired.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled,  ///< explicit cancel() — e.g. server drain
  kDeadline,   ///< the armed deadline passed
};

/// Thrown by CancelToken::check() at a checkpoint once the token has fired.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(CancelReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms (or re-arms) an absolute deadline.  The token fires once the clock
  /// passes it; deadline firing is sticky like an explicit cancel.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Removes the deadline and un-cancels: reuse the same token object for
  /// the next job without reallocation.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  /// Fires the token explicitly (sticky).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Current firing state; kNone while the token has not fired.
  CancelReason state() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed))
      return CancelReason::kCancelled;
    const auto ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns != 0 && Clock::now().time_since_epoch().count() >= ns)
      return CancelReason::kDeadline;
    return CancelReason::kNone;
  }

  bool fired() const noexcept { return state() != CancelReason::kNone; }

  /// Checkpoint: throws CancelledError naming `where` once the token has
  /// fired, otherwise returns.  `where` should identify the phase about to
  /// run (the work being skipped), e.g. "analyses".
  void check(const char* where) const {
    const CancelReason r = state();
    if (r == CancelReason::kNone) return;
    throw CancelledError(
        r, std::string(r == CancelReason::kDeadline ? "deadline exceeded"
                                                    : "cancelled") +
               " before " + where);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in epoch ns; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace perturb::support
