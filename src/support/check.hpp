// Lightweight runtime-check macros used across the perturb libraries.
//
// PERTURB_CHECK is always on (release and debug): it guards invariants whose
// violation means the analysis would silently produce wrong results (e.g. a
// causality violation in a trace).  PERTURB_DCHECK compiles out in NDEBUG
// builds and guards hot-path preconditions.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace perturb {

/// Thrown by PERTURB_CHECK failures so library users can recover; the message
/// carries the failing expression and source location.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string full = std::string("PERTURB_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw CheckError(full);
}

}  // namespace perturb

#define PERTURB_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::perturb::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PERTURB_CHECK_MSG(expr, msg)                                        \
  do {                                                                      \
    if (!(expr)) ::perturb::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PERTURB_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define PERTURB_DCHECK(expr) PERTURB_CHECK(expr)
#endif
