#include "support/cli.hpp"

#include <cstdlib>

#include "support/check.hpp"
#include "support/text.hpp"

namespace perturb::support {

Cli::Cli(int argc, const char* const* argv) {
  PERTURB_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    PERTURB_CHECK_MSG(!body.empty() && body[0] != '=', "malformed option: " + arg);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace perturb::support
