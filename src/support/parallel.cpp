#include "support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>

namespace perturb::support {

namespace {

std::atomic<int> g_hw_override{-1};

std::size_t resolve_threads(std::size_t threads) {
  if (threads != 0) return threads;
  const int injected = g_hw_override.load(std::memory_order_relaxed);
  const unsigned hw = injected >= 0 ? static_cast<unsigned>(injected)
                                    : std::thread::hardware_concurrency();
  // hardware_concurrency() may legitimately return 0 (unknown / restricted
  // container); a zero-worker pool would deadlock, so clamp to one.
  return hw == 0 ? 1 : hw;
}

}  // namespace

void set_hardware_concurrency_override(int value) noexcept {
  g_hw_override.store(value, std::memory_order_relaxed);
}

struct TaskPool::Impl {
  explicit Impl(std::size_t workers) : exceptions(workers) {
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      threads.emplace_back([this, w] { worker_loop(w); });
  }

  ~Impl() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      stopping = true;
    }
    work_ready.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop(std::size_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_ready.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      const std::size_t total = n;
      const auto* fn = body;
      lock.unlock();

      // Static partition: worker w owns [w*n/W, (w+1)*n/W).
      const std::size_t workers = threads.size();
      const std::size_t begin = w * total / workers;
      const std::size_t end = (w + 1) * total / workers;
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(w, i);
      } catch (...) {
        exceptions[w] = std::current_exception();
      }

      lock.lock();
      if (++done == threads.size()) {
        lock.unlock();
        work_done.notify_all();
      }
    }
  }

  void run(std::size_t total,
           const std::function<void(std::size_t, std::size_t)>& fn) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      n = total;
      body = &fn;
      done = 0;
      for (auto& e : exceptions) e = nullptr;
      ++generation;
    }
    work_ready.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex);
      work_done.wait(lock, [&] { return done == threads.size(); });
    }
    // Rethrow the first failure deterministically (lowest worker id).
    for (auto& e : exceptions)
      if (e) std::rethrow_exception(e);
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> exceptions;
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::uint64_t generation = 0;
  std::size_t n = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t done = 0;
  bool stopping = false;
};

TaskPool::TaskPool(std::size_t threads) : threads_(resolve_threads(threads)) {
  if (threads_ > 1) impl_ = new Impl(threads_);
}

TaskPool::~TaskPool() { delete impl_; }

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (impl_ == nullptr || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::function<void(std::size_t, std::size_t)> wrapped =
      [&body](std::size_t, std::size_t i) { body(i); };
  impl_->run(n, wrapped);
}

void TaskPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (impl_ == nullptr || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  impl_->run(n, body);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  TaskPool pool(threads);
  pool.parallel_for(n, body);
}

}  // namespace perturb::support
