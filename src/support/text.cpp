#include "support/text.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace perturb::support {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  PERTURB_CHECK(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fixed(double v, int prec) { return strf("%.*f", prec, v); }

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::string out;
  for (std::size_t ri = 0; ri < rows.size(); ++ri) {
    const auto& r = rows[ri];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : std::string();
      out += (c == 0) ? pad_right(cell, widths[c]) : pad_left(cell, widths[c]);
      if (c + 1 < cols) out += "  ";
    }
    out += '\n';
    if (ri == 0) {
      for (std::size_t c = 0; c < cols; ++c) {
        out += std::string(widths[c], '-');
        if (c + 1 < cols) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace perturb::support
