#include "support/csv.hpp"

#include "support/text.hpp"

namespace perturb::support {

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::to_field(double v) { return strf("%.9g", v); }
std::string CsvWriter::to_field(long long v) { return strf("%lld", v); }
std::string CsvWriter::to_field(unsigned long long v) { return strf("%llu", v); }

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace perturb::support
