// ASCII renderings for the paper's figures: vertical bar charts (Figure 1),
// per-processor interval timelines (Figure 4), and step-function line plots
// (Figure 5).  Benches print these so the reproduction is readable in a
// terminal without plotting tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perturb::support {

/// A labelled group of bars (e.g. measured vs. approximated per loop).
struct BarGroup {
  std::string label;           ///< x-axis label (e.g. loop number)
  std::vector<double> values;  ///< one value per series
};

/// Renders grouped horizontal bars, one row per (group, series), with the
/// numeric value at the end of each bar.  `series_names` length must match
/// every group's `values` length.
std::string render_bar_chart(const std::vector<std::string>& series_names,
                             const std::vector<BarGroup>& groups,
                             std::size_t max_width = 60);

/// A half-open interval [begin, end) on one row of a timeline.
struct TimelineInterval {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

/// One labelled row of a timeline chart (e.g. "Processor 3").
struct TimelineRow {
  std::string label;
  std::vector<TimelineInterval> intervals;
};

/// Renders rows of intervals over [t0, t1) scaled to `width` columns;
/// interval cells print as '#', empty as '.'.  Adds a time axis underneath.
std::string render_timeline(const std::vector<TimelineRow>& rows,
                            std::int64_t t0, std::int64_t t1,
                            std::size_t width = 80);

/// A step function sampled as (time, value) change points, value held until
/// the next point.  Rendered as a `height`-row ASCII plot over [t0, t1).
std::string render_step_plot(const std::vector<std::pair<std::int64_t, double>>& steps,
                             std::int64_t t0, std::int64_t t1, double vmax,
                             std::size_t width = 80, std::size_t height = 8);

}  // namespace perturb::support
