// Small statistics toolkit: online moments (Welford), percentiles, and
// histograms.  Used by the analysis layer (waiting-time distributions,
// approximation-error summaries) and by the benches when reporting sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace perturb::support {

/// Numerically stable online accumulator for count/mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile with linear interpolation between closest ranks.
/// `q` in [0, 1].  The input is copied and partially sorted.  An empty
/// input yields 0.0 — the defined empty-set result, so summaries over
/// zero matched events (e.g. a fully repaired-away trace) degrade to zero
/// error instead of crashing quality scoring.
double percentile(std::vector<double> values, double q);

/// Same result as percentile(), computed by selection (nth_element) instead
/// of a full sort — O(n) per call.  Permutes `values`; callers that no
/// longer need the original order (e.g. error summaries extracting a few
/// quantiles from a large sample) avoid percentile()'s copy + sort.
/// Shares percentile()'s empty-input contract (returns 0.0).
double percentile_inplace(std::vector<double>& values, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const;
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Root-mean-square of a sequence of errors.
double rms(const std::vector<double>& values);

}  // namespace perturb::support
