#include "support/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "support/check.hpp"

namespace perturb::support {

namespace {

constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;
/// Gauges merge by max, so INT64_MIN marks "never recorded" for free.
constexpr std::int64_t kGaugeUnset = std::numeric_limits<std::int64_t>::min();

std::size_t bucket_of(std::uint64_t value) noexcept {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value)) - 1;
}

void raise_max(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < v &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void raise_max(std::atomic<std::int64_t>& cell, std::int64_t v) noexcept {
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < v &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void lower_min(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (cur > v &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct HistogramCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, 64> buckets{};
};

/// One thread's private cells.  The owning thread is the only writer;
/// snapshot/reset access them with relaxed atomics under the registry mutex.
struct Shard {
  Shard() {
    for (auto& g : gauges) g.store(kGaugeUnset, std::memory_order_relaxed);
  }
  ~Shard() {
    for (auto& h : histograms) delete h.load(std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges;
  /// Allocated per metric on this thread's first observe; published with
  /// release so the snapshot thread sees initialized cells.
  std::array<std::atomic<HistogramCells*>, kMaxHistograms> histograms{};
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::vector<std::unique_ptr<Shard>> shards;
};

/// Leaked singleton: handles live in namespace-scope statics all over the
/// program and worker threads may still record during static teardown, so
/// the registry must outlive everything with static storage duration.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Constant-initialized so the disabled fast path is one relaxed load with
/// no static-init guard in front of it.
std::atomic<bool> g_enabled{false};

thread_local Shard* t_shard = nullptr;

Shard& shard() {
  if (t_shard == nullptr) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(std::make_unique<Shard>());
    t_shard = r.shards.back().get();
  }
  return *t_shard;
}

std::uint32_t intern(std::vector<std::string>& names, std::string_view name,
                     std::size_t cap) {
  PERTURB_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  // Names go into JSON keys verbatim; the dotted-lowercase convention never
  // needs escaping, and this keeps it that way.
  PERTURB_CHECK_MSG(name.find_first_of("\"\\\n") == std::string_view::npos,
                    "metric name must not need JSON escaping");
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  PERTURB_CHECK_MSG(names.size() < cap, "metric registry slot limit reached");
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

std::uint32_t intern_in(std::vector<std::string> Registry::*names,
                        std::string_view name, std::size_t cap) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return intern(r.*names, name, cap);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Metrics::enable(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Metrics::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& s : r.shards)
      total += s->counters[i].load(std::memory_order_relaxed);
    snap.counters[r.counter_names[i]] = total;
  }
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i) {
    std::int64_t best = kGaugeUnset;
    for (const auto& s : r.shards)
      best = std::max(best, s->gauges[i].load(std::memory_order_relaxed));
    snap.gauges[r.gauge_names[i]] = best == kGaugeUnset ? 0 : best;
  }
  for (std::size_t i = 0; i < r.histogram_names.size(); ++i) {
    HistogramSnapshot h;
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    for (const auto& s : r.shards) {
      const HistogramCells* cells =
          s->histograms[i].load(std::memory_order_acquire);
      if (cells == nullptr) continue;
      h.count += cells->count.load(std::memory_order_relaxed);
      h.sum += cells->sum.load(std::memory_order_relaxed);
      min = std::min(min, cells->min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, cells->max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < h.buckets.size(); ++b)
        h.buckets[b] += cells->buckets[b].load(std::memory_order_relaxed);
    }
    h.min = h.count > 0 ? min : 0;
    snap.histograms[r.histogram_names[i]] = h;
  }
  return snap;
}

void Metrics::reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : s->gauges) g.store(kGaugeUnset, std::memory_order_relaxed);
    for (auto& slot : s->histograms) {
      HistogramCells* cells = slot.load(std::memory_order_relaxed);
      if (cells == nullptr) continue;
      cells->count.store(0, std::memory_order_relaxed);
      cells->sum.store(0, std::memory_order_relaxed);
      cells->min.store(std::numeric_limits<std::uint64_t>::max(),
                       std::memory_order_relaxed);
      cells->max.store(0, std::memory_order_relaxed);
      for (auto& b : cells->buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Metrics::shard_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.shards.size();
}

Counter::Counter(std::string_view name)
    : slot_(intern_in(&Registry::counter_names, name, kMaxCounters)) {}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  shard().counters[slot_].fetch_add(delta, std::memory_order_relaxed);
}

Gauge::Gauge(std::string_view name)
    : slot_(intern_in(&Registry::gauge_names, name, kMaxGauges)) {}

void Gauge::record_max(std::int64_t value) const noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  raise_max(shard().gauges[slot_], value);
}

HistogramMetric::HistogramMetric(std::string_view name)
    : slot_(intern_in(&Registry::histogram_names, name, kMaxHistograms)) {}

void HistogramMetric::observe(std::uint64_t value) const noexcept {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Shard& s = shard();
  auto& slot = s.histograms[slot_];
  HistogramCells* h = slot.load(std::memory_order_relaxed);
  if (h == nullptr) {
    h = new HistogramCells;
    slot.store(h, std::memory_order_release);
  }
  h->count.fetch_add(1, std::memory_order_relaxed);
  h->sum.fetch_add(value, std::memory_order_relaxed);
  lower_min(h->min, value);
  raise_max(h->max, value);
  h->buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(const HistogramMetric& sink) noexcept
    : sink_(g_enabled.load(std::memory_order_relaxed) ? &sink : nullptr) {
  if (sink_ != nullptr) start_ns_ = now_ns();
}

PhaseTimer::~PhaseTimer() {
  if (sink_ != nullptr) sink_->observe(now_ns() - start_ns_);
}

namespace {

void append_object_open(std::string& out, const char* key) {
  out += "  \"";
  out += key;
  out += "\": {";
}

void append_key(std::string& out, const std::string& name, bool& first) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "    \"";
  out += name;
  out += "\": ";
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

}  // namespace

std::uint64_t histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0;
  if (q <= 0.0) return h.min;
  if (q >= 1.0) return h.max;
  // Rank of the q-th value (1-based), then walk the log2 buckets to the one
  // holding it.  The estimate is the bucket's upper bound — a value v in
  // bucket b satisfies v < 2^(b+1) — clamped into the exact [min, max].
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(h.count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    seen += h.buckets[b];
    if (seen >= rank) {
      const std::uint64_t upper =
          b >= 63 ? h.max : (std::uint64_t{2} << b) - 1;
      return std::max(h.min, std::min(h.max, upper));
    }
  }
  return h.max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n";

  append_object_open(out, "counters");
  bool first = true;
  for (const auto& [name, value] : counters) {
    append_key(out, name, first);
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  append_object_open(out, "gauges");
  first = true;
  for (const auto& [name, value] : gauges) {
    append_key(out, name, first);
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  append_object_open(out, "histograms");
  first = true;
  for (const auto& [name, h] : histograms) {
    append_key(out, name, first);
    out += '{';
    append_field(out, "count", h.count);
    out += ", ";
    append_field(out, "sum", h.sum);
    out += ", ";
    append_field(out, "min", h.min);
    out += ", ";
    append_field(out, "max", h.max);
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      append_field(out, std::to_string(b).c_str(), h.buckets[b]);
    }
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

}  // namespace perturb::support
