// Self-observability: a low-overhead metrics registry.
//
// The paper's subject is what instrumentation costs; this is the repo
// turning that lens on itself.  The registry holds three metric kinds —
// monotonic counters, max-gauges, and log2-bucketed histograms (which double
// as timers via PhaseTimer) — recorded into thread-local shards of relaxed
// atomics and merged deterministically at snapshot time.
//
// Cost model:
//   - disabled (the default): every record operation is one relaxed atomic
//     load and a branch; no clock reads, no allocation, no shard creation.
//   - enabled: one or two relaxed fetch_adds on cache lines private to the
//     recording thread (each thread owns a shard; only snapshot/reset read
//     across shards, under the registry mutex).
//
// Determinism: a snapshot depends only on the multiset of recorded values
// and the set of registered metric names — counters and histogram cells are
// commutative sums, gauges are maxima — so the merged result (and the JSON
// rendered from it, which walks sorted std::map keys) is bit-identical
// regardless of how work was sharded across 1, 2, or N threads.
//
// Handles are interned by name: constructing support::Counter("x") twice —
// even from different translation units — yields the same slot.  Handles
// are cheap to copy and are usually function-local or namespace-scope
// statics near the code they instrument.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace perturb::support {

/// Merged view of one histogram: exact count/sum/min/max plus 64 log2
/// buckets (bucket i counts values v with bit_width(v) - 1 == i; zero lands
/// in bucket 0 alongside one).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, 64> buckets{};
};

/// Point-in-time merge of every registered metric across all shards.
/// Registered-but-untouched metrics appear with zero values, so the key set
/// depends only on what the binary registered, never on which threads ran.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Stable-key JSON: objects keyed by metric name in sorted (map) order,
  /// integer values only, histogram buckets as a sparse {"index": count}
  /// object.  Identical snapshots render byte-identical text.
  std::string to_json() const;
};

/// Estimated quantile (q in [0, 1]) of the values recorded into a histogram,
/// derived from its log2 buckets: the upper bound of the bucket holding the
/// q-th value, clamped into the exact [min, max].  Resolution is one power of
/// two — coarse, but exactly what tail-latency reporting (p50/p99/p99.9 of a
/// nanosecond timer) needs from an always-on registry.  Returns 0 for an
/// empty histogram.
std::uint64_t histogram_quantile(const HistogramSnapshot& h, double q);

/// Static facade over the process-wide registry.
class Metrics {
 public:
  /// Global record switch; off at startup.  Flipping it does not clear
  /// already-recorded values (use reset()).
  static void enable(bool on) noexcept;
  static bool enabled() noexcept;

  /// Merges all shards.  Safe to call while other threads record; relaxed
  /// reads may miss in-flight increments but never tear a value.
  static MetricsSnapshot snapshot();

  /// Zeroes every cell in every shard; registrations are kept.
  static void reset();

  /// Number of thread shards created so far (diagnostic/test hook: the
  /// disabled path must never create one).
  static std::size_t shard_count();
};

/// Monotonic counter handle.
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  std::uint32_t slot_;
};

/// High-watermark gauge: shards merge by max.  Unset gauges snapshot as 0.
class Gauge {
 public:
  explicit Gauge(std::string_view name);
  void record_max(std::int64_t value) const noexcept;

 private:
  std::uint32_t slot_;
};

/// Histogram handle; `observe` files a value into its log2 bucket and the
/// exact count/sum/min/max.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::string_view name);
  void observe(std::uint64_t value) const noexcept;

 private:
  std::uint32_t slot_;
  friend class PhaseTimer;
};

/// RAII wall-clock span recorded into a histogram in nanoseconds.  Arms
/// itself only when metrics are enabled at construction: the disabled path
/// performs no clock reads at all.
class PhaseTimer {
 public:
  explicit PhaseTimer(const HistogramMetric& sink) noexcept;
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const HistogramMetric* sink_;  ///< null when disarmed
  std::uint64_t start_ns_ = 0;
};

}  // namespace perturb::support
