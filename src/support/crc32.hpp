// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for integrity
// checking of serialized trace chunks.  Software slice-by-16 implementation
// (16 bytes per iteration on little-endian hosts, byte-at-a-time fallback);
// dependency-free and fast enough that checksumming never dominates trace
// loads.
#pragma once

#include <cstddef>
#include <cstdint>

namespace perturb::support {

/// Incremental CRC-32 accumulator.  Feed bytes with update(); read the
/// finalized value with value().  A fresh accumulator over no bytes yields 0.
class Crc32 {
 public:
  Crc32() = default;

  void update(const void* data, std::size_t size) noexcept;

  /// Finalized (bit-inverted) CRC of everything fed so far.
  std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience: CRC-32 of a buffer.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

}  // namespace perturb::support
