// String formatting helpers.  GCC 12 lacks <format>, so we provide the small
// set of printf-style conveniences the libraries need, type-safe at the call
// sites we use them from.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace perturb::support {

/// snprintf into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char delim);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Left-pad with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Format a double with `prec` digits after the point (fixed notation).
std::string fixed(double v, int prec);

/// Render a simple aligned table: first row is the header.  Columns are
/// right-aligned except the first, which is left-aligned.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

}  // namespace perturb::support
