#include "support/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "support/metrics.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PERTURB_CRC32_PCLMUL 1
#include <immintrin.h>
#endif

namespace perturb::support {

namespace {

// Slice-by-16: sixteen derived tables let the inner loop fold 16 input bytes
// per iteration with independent lookups instead of one serial lookup per
// byte.  kTables[0] is the classic byte-at-a-time table, so every slice
// produces the same CRC values as the original implementation.
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 16; ++t) {
      c = tables[0][c & 0xffu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

#ifdef PERTURB_CRC32_PCLMUL

bool has_pclmul() noexcept {
  static const bool ok =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1") != 0;
  return ok;
}

// Carry-less-multiply folding (Gopal et al., "Fast CRC Computation for
// Generic Polynomials Using PCLMULQDQ Instruction"): four 128-bit
// accumulators fold 64 input bytes per iteration, then collapse through a
// single accumulator, a 128→64 fold, and a Barrett reduction.  The folding
// constants are the standard ones for the reflected 0xEDB88320 polynomial.
// Requires len >= 64 and len % 16 == 0; takes and returns the raw
// (bit-inverted) accumulator, composing with the table path for tails.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_fold_pclmul(
    const unsigned char* buf, std::size_t len, std::uint32_t crc) noexcept {
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  buf += 0x40;
  len -= 0x40;
  while (len >= 0x40) {
    const __m128i x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    const __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    const __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    const __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    x2 = _mm_xor_si128(
        _mm_xor_si128(x2, x6),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10)));
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, x7),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20)));
    x4 = _mm_xor_si128(
        _mm_xor_si128(x4, x8),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30)));
    buf += 0x40;
    len -= 0x40;
  }

  // Fold the four accumulators into one.
  __m128i x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 0x10) {
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 0x10;
    len -= 0x10;
  }

  // Fold 128 bits to 64.
  const __m128i mask_lo32 = _mm_setr_epi32(-1, 0, -1, 0);
  __m128i x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x0);
  const __m128i k5k0 = _mm_set_epi64x(0, 0x0163cd6124);
  x0 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask_lo32);
  x1 = _mm_clmulepi64_si128(x1, k5k0, 0x00);
  x1 = _mm_xor_si128(x1, x0);

  // Barrett reduction to 32 bits (low qword P', high qword mu).
  const __m128i poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);
  x0 = _mm_and_si128(x1, mask_lo32);
  x0 = _mm_clmulepi64_si128(x0, poly, 0x10);
  x0 = _mm_and_si128(x0, mask_lo32);
  x0 = _mm_clmulepi64_si128(x0, poly, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

#endif  // PERTURB_CRC32_PCLMUL

}  // namespace

namespace {

// Self-observability: which CRC implementation each update took.  A PCLMUL
// update that leaves a sub-16-byte tail to the table path still counts as
// one PCLMUL update (the fold did the bulk of the work).
const Counter kCrcPclmul("io.crc.pclmul");
const Counter kCrcSlice16("io.crc.slice16");

}  // namespace

void Crc32::update(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  bool folded_pclmul = false;
#ifdef PERTURB_CRC32_PCLMUL
  if (size >= 64 && has_pclmul()) {
    const std::size_t folded = size & ~static_cast<std::size_t>(15);
    c = crc32_fold_pclmul(p, folded, c);
    p += folded;
    size -= folded;
    folded_pclmul = true;
  }
#endif
  (folded_pclmul ? kCrcPclmul : kCrcSlice16).add();
  if constexpr (std::endian::native == std::endian::little) {
    // Head: align the 8-byte loads below (also handles short inputs).
    while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
      c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
      --size;
    }
    while (size >= 16) {
      std::uint64_t lo;
      std::uint64_t hi;
      std::memcpy(&lo, p, 8);
      std::memcpy(&hi, p + 8, 8);
      // Little-endian fold: the low 4 bytes are xored into the running CRC,
      // the rest enter fresh; 16 independent table lookups combine.
      lo ^= c;
      c = kTables[15][lo & 0xffu] ^ kTables[14][(lo >> 8) & 0xffu] ^
          kTables[13][(lo >> 16) & 0xffu] ^ kTables[12][(lo >> 24) & 0xffu] ^
          kTables[11][(lo >> 32) & 0xffu] ^ kTables[10][(lo >> 40) & 0xffu] ^
          kTables[9][(lo >> 48) & 0xffu] ^ kTables[8][(lo >> 56) & 0xffu] ^
          kTables[7][hi & 0xffu] ^ kTables[6][(hi >> 8) & 0xffu] ^
          kTables[5][(hi >> 16) & 0xffu] ^ kTables[4][(hi >> 24) & 0xffu] ^
          kTables[3][(hi >> 32) & 0xffu] ^ kTables[2][(hi >> 40) & 0xffu] ^
          kTables[1][(hi >> 48) & 0xffu] ^ kTables[0][(hi >> 56) & 0xffu];
      p += 16;
      size -= 16;
    }
    if (size >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= c;
      c = kTables[7][word & 0xffu] ^ kTables[6][(word >> 8) & 0xffu] ^
          kTables[5][(word >> 16) & 0xffu] ^ kTables[4][(word >> 24) & 0xffu] ^
          kTables[3][(word >> 32) & 0xffu] ^ kTables[2][(word >> 40) & 0xffu] ^
          kTables[1][(word >> 48) & 0xffu] ^ kTables[0][(word >> 56) & 0xffu];
      p += 8;
      size -= 8;
    }
  }
  while (size > 0) {
    c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
    --size;
  }
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  Crc32 acc;
  acc.update(data, size);
  return acc.value();
}

}  // namespace perturb::support
