// Deterministic fixed-size task pool.
//
// Analysis passes and Monte-Carlo sampling are embarrassingly parallel but
// must stay exactly reproducible: the same inputs must yield bit-identical
// results at any worker count.  `parallel_for` therefore never uses work
// stealing or dynamic chunking — the index space is split into the same
// contiguous blocks regardless of timing, and each body invocation writes
// only to its own index's output slot.  Determinism is then a property of
// the *body* (no shared mutable state, per-index derived seeds), which is
// how likely_executions and the pipeline's analysis fan-out use it.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace perturb::support {

/// A fixed set of worker threads executing static partitions of an index
/// space.  Workers are created once and parked between calls; a pool of
/// size 1 (or a call with n <= 1) runs inline with no synchronization.
class TaskPool {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency().
  explicit TaskPool(std::size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Worker count (>= 1).
  std::size_t size() const noexcept { return threads_; }

  /// Invokes body(i) for every i in [0, n).  Worker w handles the contiguous
  /// block [w*n/W, (w+1)*n/W) — the partition depends only on (n, W), never
  /// on timing.  Blocks until all indices ran.  If any body throws, the
  /// first exception (lowest worker id) is rethrown after the pass drains;
  /// the remaining indices of that worker's block are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Same static partition, but the body also receives the id of the worker
  /// executing it (in [0, size())).  Worker w is the only invoker for its
  /// block, so `body(w, i)` may use per-worker scratch indexed by w without
  /// synchronization.  Inline execution (size-1 pool or n == 1) passes
  /// worker 0.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< null for a size-1 pool (inline execution)
  std::size_t threads_ = 1;
};

/// One-shot convenience: runs body over [0, n) on an ephemeral pool of
/// `threads` workers (0 = hardware concurrency).  Same determinism contract
/// as TaskPool::parallel_for.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Test hook: substitutes `value` for std::thread::hardware_concurrency()
/// when TaskPool resolves `threads == 0`.  Restricted containers may report
/// a concurrency of 0; the pool clamps that to one worker, and this hook
/// lets tests exercise the clamp without such an environment.  A negative
/// value restores the real query.
void set_hardware_concurrency_override(int value) noexcept;

}  // namespace perturb::support
