// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (probe-cost jitter, workload
// perturbation) must be reproducible from a single seed so that experiments
// are exactly re-runnable.  We use SplitMix64 for seeding/hashing and
// xoshiro256** for streams; both are tiny, fast, and well studied.
#pragma once

#include <array>
#include <cstdint>

namespace perturb::support {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used both as a seeding function and as a stateless hash for keyed jitter.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit keys into one, for keyed deterministic jitter
/// (e.g. hash of (seed, processor, event-index)).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// xoshiro256** — 256-bit state, period 2^256-1.  Satisfies the
/// UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x8a5cd789635d2dffULL) noexcept {
    // Seed the full state through SplitMix64, as recommended by the authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = splitmix64(x);
      s = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic — throughput is irrelevant here).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Stateless keyed jitter in [-1, 1]: deterministic given (key parts), with no
/// stream state to thread through call sites.  Used for probe-cost jitter so
/// an event's measured overhead depends only on its identity and the seed.
double keyed_jitter(std::uint64_t seed, std::uint64_t k1, std::uint64_t k2) noexcept;

}  // namespace perturb::support
