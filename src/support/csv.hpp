// Minimal CSV writer used by benches to dump series (Figure 4/5 data) in a
// machine-readable form next to the human-readable ASCII rendering.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace perturb::support {

/// Streams rows of a CSV document.  Fields containing commas, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void row(const std::vector<std::string>& fields);

  /// Convenience: writes each value with operator<< semantics.
  template <typename... Ts>
  void rowv(const Ts&... vals) {
    std::vector<std::string> fields;
    (fields.push_back(to_field(vals)), ...);
    row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(long long v);
  static std::string to_field(unsigned long long v);
  static std::string to_field(int v) { return to_field(static_cast<long long>(v)); }
  static std::string to_field(long v) { return to_field(static_cast<long long>(v)); }
  static std::string to_field(unsigned v) {
    return to_field(static_cast<unsigned long long>(v));
  }
  static std::string to_field(unsigned long v) {
    return to_field(static_cast<unsigned long long>(v));
  }

  static std::string escape(const std::string& field);

  std::ostream& out_;
};

}  // namespace perturb::support
