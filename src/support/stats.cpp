#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace perturb::support {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  PERTURB_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double percentile_inplace(std::vector<double>& values, double q) {
  PERTURB_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  // values[lo] after selection is the lo-th order statistic — the same
  // value sort-based percentile() reads — and the (lo+1)-th is the minimum
  // of the upper partition, so interpolation is bit-identical.
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.end());
  const double at_lo = values[lo];
  const double at_hi =
      lo + 1 < values.size()
          ? *std::min_element(
                values.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                values.end())
          : at_lo;
  return at_lo * (1.0 - frac) + at_hi * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  PERTURB_CHECK(hi > lo);
  PERTURB_CHECK(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
  ++counts_[i];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  PERTURB_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  PERTURB_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double rms(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v * v;
  return std::sqrt(acc / static_cast<double>(values.size()));
}

}  // namespace perturb::support
